type user_spec = {
  utility_cap : float;
  capacity : float array;
  interests : (int * float * float array) list;
}

type t =
  | User_join of user_spec
  | User_leave of int
  | Stream_cost_change of { stream : int; costs : float array }
  | Budget_resize of float array

let kind = function
  | User_join _ -> "join"
  | User_leave _ -> "leave"
  | Stream_cost_change _ -> "cost"
  | Budget_resize _ -> "budget"

let num x = if x = infinity then "inf" else Printf.sprintf "%.17g" x

let to_string = function
  | User_leave slot -> Printf.sprintf "leave %d" slot
  | Stream_cost_change { stream; costs } ->
      Printf.sprintf "cost %d %s" stream
        (String.concat " " (Array.to_list (Array.map num costs)))
  | Budget_resize budgets ->
      Printf.sprintf "budget %s"
        (String.concat " " (Array.to_list (Array.map num budgets)))
  | User_join { utility_cap; capacity; interests } ->
      let buf = Buffer.create 128 in
      Buffer.add_string buf "join ";
      Buffer.add_string buf (num utility_cap);
      Array.iter
        (fun k ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf (num k))
        capacity;
      List.iter
        (fun (s, w, loads) ->
          Buffer.add_string buf (Printf.sprintf " | %d %s" s (num w));
          Array.iter
            (fun k ->
              Buffer.add_char buf ' ';
              Buffer.add_string buf (num k))
            loads)
        interests;
      Buffer.contents buf

(* The parse path is exception-free: every malformed token produces an
   [Error] with token context, and only the [of_string]/[log_of_string]
   wrappers at the bottom convert those to the legacy [Failure] for the
   CLI boundary. *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Parse_error msg)) fmt

let float_tok what tok =
  match float_of_string_opt tok with
  | Some x -> x
  | None -> fail "bad %s %S" what tok

let int_tok what tok =
  match int_of_string_opt tok with
  | Some x -> x
  | None -> fail "bad %s %S" what tok

let tokens line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let parse_exn line =
  match tokens line with
  | [ "leave"; slot ] -> User_leave (int_tok "slot" slot)
  | "leave" :: _ -> fail "leave expects one slot id"
  | "cost" :: stream :: costs when costs <> [] ->
      Stream_cost_change
        { stream = int_tok "stream" stream;
          costs = Array.of_list (List.map (float_tok "cost") costs) }
  | "cost" :: _ -> fail "cost expects a stream and costs"
  | "budget" :: budgets when budgets <> [] ->
      Budget_resize (Array.of_list (List.map (float_tok "budget") budgets))
  | "budget" :: _ -> fail "budget expects budget values"
  | "join" :: rest ->
      (* Split the remaining tokens into "|"-separated groups: the head
         group is [W K_1..K_mc], each further group one interest. *)
      let groups =
        List.fold_left
          (fun acc tok ->
            if tok = "|" then [] :: acc
            else
              match acc with
              | g :: tl -> (tok :: g) :: tl
              | [] -> [ [ tok ] ])
          [ [] ] rest
        |> List.rev_map List.rev
      in
      (match groups with
      | head :: interest_groups ->
          let utility_cap, capacity =
            match head with
            | cap :: ks ->
                ( float_tok "utility cap" cap,
                  Array.of_list (List.map (float_tok "capacity") ks) )
            | [] -> fail "join expects a utility cap"
          in
          let mc = Array.length capacity in
          let interests =
            List.map
              (fun g ->
                match g with
                | s :: w :: loads when List.length loads = mc ->
                    ( int_tok "stream" s,
                      float_tok "utility" w,
                      Array.of_list (List.map (float_tok "load") loads) )
                | _ ->
                    fail "join interest expects <stream> <w> and %d loads" mc)
              interest_groups
          in
          User_join { utility_cap; capacity; interests }
      | [] -> fail "empty join")
  | kw :: _ -> fail "unknown keyword %S" kw
  | [] -> fail "empty line"

let of_string_result line =
  match parse_exn line with
  | d -> Ok d
  | exception Parse_error msg -> Error ("Delta.of_string: " ^ msg)

let of_string line =
  match of_string_result line with Ok d -> d | Error msg -> failwith msg

let log_to_string deltas =
  String.concat "" (List.map (fun d -> to_string d ^ "\n") deltas)

let strip_comment line =
  match String.index_opt line '#' with
  | Some j -> String.sub line 0 j
  | None -> line

let log_of_string_result text =
  let lines = String.split_on_char '\n' text in
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        let line = strip_comment line in
        if String.trim line = "" then go (i + 1) acc rest
        else
          match of_string_result line with
          | Ok d -> go (i + 1) (d :: acc) rest
          | Error msg -> Error (Printf.sprintf "line %d: %s" i msg))
  in
  go 1 [] lines

let log_of_string text =
  match log_of_string_result text with
  | Ok deltas -> deltas
  | Error msg -> failwith msg

let write_log path deltas =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (log_to_string deltas))

let read_log_result path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let n = in_channel_length ic in
        really_input_string ic n)
  with
  | text -> log_of_string_result text
  | exception Sys_error msg -> Error msg

let read_log path =
  match read_log_result path with
  | Ok deltas -> deltas
  | Error msg -> failwith msg

let pp ppf d =
  match d with
  | User_join { interests; _ } ->
      Format.fprintf ppf "join (%d interests)" (List.length interests)
  | User_leave slot -> Format.fprintf ppf "leave slot %d" slot
  | Stream_cost_change { stream; _ } ->
      Format.fprintf ppf "cost change on stream %d" stream
  | Budget_resize _ -> Format.fprintf ppf "budget resize"
