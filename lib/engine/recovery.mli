(** Startup recovery-path selection.

    After a crash the engine has (up to) two ways back: load the latest
    snapshot and replay only the WAL tail it does not cover, or replay
    the whole WAL from scratch. Which is cheaper depends on how stale
    the snapshot is — a checkpoint taken two records ago makes the
    tail path nearly free; one taken at record 10 of 100k is pure
    overhead on top of what is effectively a full replay anyway.

    {!choose} prices both paths with a linear cost model (records to
    {e apply} dominate; snapshot bytes to parse are the secondary
    term) and picks the cheaper one. The constants are rough and
    per-machine — override them with [VDMC_APPLY_SECONDS_PER_RECORD]
    and [VDMC_SNAPSHOT_SECONDS_PER_BYTE] — but the decision only needs
    the ratio, so rough is enough except where the two paths cost the
    same and either choice is fine. The choice taken is recorded via
    {!Counters.note_recovery_path} by the caller (see {!note}). *)

type choice = Snapshot_tail | Full_replay

type estimate = {
  choice : choice;  (** the cheaper path (ties go to [Snapshot_tail]) *)
  snapshot_seconds : float;
      (** estimated cost of snapshot load + tail replay; [infinity]
          when no usable snapshot exists *)
  replay_seconds : float;  (** estimated cost of the full replay *)
}

val choose : snapshot_bytes:int -> total_records:int -> covered:int -> estimate
(** Price both paths for a snapshot of [snapshot_bytes] covering
    [covered] of the WAL's [total_records] records. *)

val assess : snapshot_path:string -> total_records:int -> estimate
(** {!choose} against the snapshot file on disk: its byte size and
    {!Snapshot.peek_deltas_applied}. Degrades to a [Full_replay]
    estimate when the snapshot is missing, unreadable, has no counters
    line, or claims to cover more records than the WAL holds (a stale
    WAL paired with a newer snapshot is not a tail-replay situation). *)

val choice_to_string : choice -> string

val note : Counters.t -> choice -> unit
(** Record the chosen path in the counters (and the exported
    [engine_recovery_path_total] series). *)
