(** Startup recovery-path selection.

    After a crash the engine has (up to) three ways back: restore the
    checkpoint chain and replay only the WAL tail past its coverage,
    load the latest full snapshot and replay its (usually longer)
    tail, or replay the whole WAL from scratch. Which is cheaper
    depends on staleness and parse weight — a checkpoint taken two
    records ago makes the tail path nearly free; a snapshot taken at
    record 10 of 100k is pure overhead on top of what is effectively a
    full replay anyway; and the chain skips the dense matrices that
    make a full snapshot expensive to parse in the first place.

    {!choose} prices the paths with a linear cost model (records to
    {e apply} dominate; snapshot bytes to parse are the secondary
    term) and picks the cheaper one. The constants are rough and
    per-machine — override them with [VDMC_APPLY_SECONDS_PER_RECORD]
    and [VDMC_SNAPSHOT_SECONDS_PER_BYTE] — but the decision only needs
    the ratio, so rough is enough except where two paths cost the
    same and either choice is fine. The choice taken is recorded via
    {!Counters.note_recovery_path} by the caller (see {!note}). *)

type choice = Snapshot_tail | Full_replay | Chain_tail

type estimate = {
  choice : choice;
      (** the cheapest path (ties go to the shorter-tail path: chain,
          then snapshot) *)
  snapshot_seconds : float;
      (** estimated cost of snapshot load + tail replay; [infinity]
          when no usable snapshot exists *)
  replay_seconds : float;  (** estimated cost of the full replay *)
  chain_seconds : float;
      (** estimated cost of chain restore + tail replay; [infinity]
          when no usable chain exists *)
}

val choose :
  ?chain:int * int ->
  snapshot_bytes:int ->
  total_records:int ->
  covered:int ->
  unit ->
  estimate
(** Price the paths for a snapshot of [snapshot_bytes] covering
    [covered] of the WAL's [total_records] records, and optionally a
    checkpoint chain of [(chain_bytes, chain_covered)]. A negative
    [snapshot_bytes] means "no snapshot". *)

val assess :
  ?chain_path:string -> snapshot_path:string -> total_records:int -> unit -> estimate
(** {!choose} against the files on disk: the snapshot's byte size and
    {!Snapshot.peek_deltas_applied}, and (when [chain_path] is given)
    the chain's {!Checkpoint.peek}. Degrades each path to [infinity]
    when its file is missing, unreadable, structurally empty, or
    claims to cover more records than the WAL holds (a stale WAL
    paired with a newer artifact is not a tail-replay situation);
    with neither artifact usable the choice is [Full_replay]. *)

val choice_to_string : choice -> string

val note : Counters.t -> choice -> unit
(** Record the chosen path in the counters (and the exported
    [engine_recovery_path_total] series). *)
