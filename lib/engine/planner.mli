(** Incremental plan state and the CELF-style lazy-greedy core.

    A planner owns the current plan over a {!View.t}: which streams
    the server transmits, which active slot receives which stream, and
    the residual budgets/capacities — all maintained incrementally.

    {!extend} grows the plan greedily by capped-marginal-utility per
    normalized server cost. In [`Lazy] mode it keeps a max-heap of
    {e upper bounds} on each candidate's marginal utility and
    re-evaluates only entries that surface at the top
    (Minoux/CELF lazy evaluation, exact because the capped objective's
    marginals never increase as the plan grows); [`Eager] mode
    re-evaluates every candidate every round. Both modes pick by the
    identical comparison (cross-multiplied effectiveness, ties to the
    lower stream id), so they produce the {e same} plan — [`Eager]
    exists as the reference for counting how many evaluations laziness
    saves.

    The [note_*] functions absorb churn between replans, keeping the
    plan feasible and every heap bound a valid upper bound:
    - a join delivers already-transmitted streams to the new slot
      (free at the server) and raises affected candidates' bounds;
    - a leave removes the slot's deliveries (marginals only shrink);
    - cost/budget changes evict the least effective streams until the
      budgets hold again.

    All evaluation is in terms of the paper's capped objective
    [w(A) = Σ_u min(W_u, w_u(A(u)))], restricted to feasible
    deliveries ([extend] never overflows a capacity or budget). *)

type t

type mode = Lazy | Eager

val create : View.t -> t
(** Empty plan over the view. *)

val view : t -> View.t

val reset : t -> unit
(** Drop the whole plan and re-seed every candidate bound with its
    static upper bound [Σ_u min(w_u(S), W_u)]. *)

val set_pinned : t -> int list -> unit
(** Streams that repairs evict only as a last resort (live sessions). *)

val pinned : t -> int list

(** {1 Plan inspection} *)

val is_admitted : t -> int -> bool
val admitted : t -> int list
(** Streams currently transmitted, ascending. *)

val delivered : t -> int -> int list
(** Streams delivered to a slot, ascending. *)

val assignment : t -> Mmd.Assignment.t
(** Snapshot over all [View.num_slots] slots. *)

val utility : t -> float
(** Capped objective of the current plan, maintained incrementally. *)

val server_used : t -> int -> float
(** Current consumption of server measure [i]. *)

val evals : t -> int
(** Marginal-utility evaluations performed so far. *)

val eager_equiv : t -> int
(** Evaluations an eager greedy would have performed for the same
    confirmations — the baseline for "evals saved". *)

(** {1 Planning} *)

val admit : t -> int -> bool
(** Force-admit a stream if it fits the residual budgets; delivers it
    to every active slot with positive residual utility and capacity.
    Returns false (and does nothing) when it does not fit or is
    already admitted. *)

val extend : ?mode:mode -> t -> unit
(** Greedily admit streams until no candidate has positive marginal
    utility or none fits the budgets. Default [`Lazy]. *)

val best_single : t -> (int * float) option
(** The stream with the largest {e achievable} stand-alone capped
    utility — what [reset; admit s] would deliver: 0 if the stream
    does not fit the budgets, and [Σ min(w_u(s), W_u)] over the active
    interested slots whose capacity fits the stream's load from empty.
    This is the [A_max] of §2.2; the controller's solve restarts from
    this stream whenever the greedy plan lands below it. [None] when
    the view has no streams. *)

(** {1 Churn repairs} *)

val note_join : t -> int -> unit
(** A slot just became active in the view. *)

val note_leave : t -> int -> unit
(** A slot was just deactivated in the view (its utilities are already
    zeroed there). *)

val note_cost_change : t -> int -> int
(** Stream costs changed in the view; re-derives budget usage and
    evicts until feasible. Returns the number of evictions. *)

val note_budget_resize : t -> int
(** Budgets changed in the view; same contract as
    {!note_cost_change}. *)

(** {1 Restore} *)

val force : ?admitted:int list -> t -> Mmd.Assignment.t -> unit
(** Install an assignment verbatim (snapshot restore). The assignment
    must have exactly [View.num_slots] users and be feasible for the
    view. [admitted] lists extra streams to mark transmitted beyond
    those appearing in the assignment — a stream whose recipients all
    left is delivered to nobody yet still holds budget and is free for
    later joiners, and the assignment alone cannot encode that.
    @raise Invalid_argument on a user-count mismatch or an
    out-of-range admitted stream. *)

val float_state : t -> float * float array * (float * float * float array) array
(** [(total, used, per-slot (delivered_util, capped, cap_used))] — the
    accumulated float state, copied. These values are path-dependent
    (incremental adds and subtracts round differently from the
    plan-order rebuild {!force} performs), so snapshots persist them
    bit-exactly to keep crash recovery bit-identical. *)

val set_float_state :
  t ->
  total:float ->
  used:float array ->
  slots:(float * float * float array) array ->
  unit
(** Overwrite the accumulated float state (snapshot restore, after
    {!force}). @raise Invalid_argument when [used] does not have
    [View.m], [slots] does not have [View.num_slots], or a slot's
    capacity row does not have [View.mc] entries. *)

val add_evals : t -> evals:int -> eager_equiv:int -> unit
(** Credit historical counts (snapshot restore). *)
