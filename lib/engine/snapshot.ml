(* Engine state snapshots: a checksummed envelope line, then a small
   header, then the materialized view in Mmd.Io instance format, then
   the plan in Mmd.Io plan format, separated by %%-section markers.

   v2 envelope: "mmd-engine-snapshot v2 <body-bytes> <crc32-hex>\n"
   followed by the body; the length catches truncation (a torn write
   that lost the tail) and the CRC catches corruption, each with a
   distinct error message. v1 documents (no envelope) still load, so
   snapshots from older engines keep working. *)

let magic_prefix = "mmd-engine-snapshot"
let magic_v1 = "mmd-engine-snapshot v1"
let magic_v2 = "mmd-engine-snapshot v2"
let magic = magic_v1

let body ctrl =
  let buf = Buffer.create 4096 in
  let addf fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  addf "policy %s\n" (Controller.policy_to_string (Controller.policy ctrl));
  (match Controller.pinned ctrl with
  | [] -> ()
  | pinned ->
      addf "pinned%s\n"
        (String.concat ""
           (List.map (fun s -> Printf.sprintf " %d" s) pinned)));
  addf "active%s\n"
    (String.concat ""
       (List.map
          (fun u -> Printf.sprintf " %d" u)
          (View.active_slots (Controller.view ctrl))));
  (match View.free_list (Controller.view ctrl) with
  | [] -> ()
  | free ->
      addf "free%s\n"
        (String.concat "" (List.map (fun u -> Printf.sprintf " %d" u) free)));
  let j, l, c, b, r, e = Counters.fields (Controller.counters ctrl) in
  let ft, q, rec_, fb = Counters.resilience_fields (Controller.counters ctrl) in
  let planner = Controller.planner ctrl in
  addf "counters %d %d %d %d %d %d %d %d %d %d %d %d %d\n" j l c b r e
    (Planner.evals planner)
    (Planner.eager_equiv planner)
    (Controller.deltas_applied ctrl)
    ft q rec_ fb;
  addf "epoch %d %.17g\n"
    (Controller.since_replan ctrl)
    (Controller.utility_at_replan ctrl);
  (* v2.1 (version-gated): latency histograms, so restored engines
     keep their pre-crash samples. Files without these lines — v1 and
     older v2 — still load, with empty histograms as before. *)
  let cs = Controller.counters ctrl in
  if Obs.Hist.count (Counters.replan_hist cs) > 0 then
    addf "hist replan %s\n" (Obs.Hist.encode (Counters.replan_hist cs));
  if Obs.Hist.count (Counters.recovery_hist cs) > 0 then
    addf "hist recovery %s\n" (Obs.Hist.encode (Counters.recovery_hist cs));
  (* v2.2 (version-gated): the planner's accumulated float state.
     [Planner.force] rebuilds these in plan order, which can round
     differently from the live incremental accumulation — persisting
     the exact bits keeps recovery bit-identical (utility included).
     Hex floats round-trip exactly. *)
  let ptotal, pused, pslots = Planner.float_state planner in
  let floats a =
    String.concat "" (List.map (Printf.sprintf " %h") (Array.to_list a))
  in
  addf "pstate %h%s\n" ptotal (floats pused);
  Array.iteri
    (fun u (du, cap, cu) -> addf "pslot %d %h %h%s\n" u du cap (floats cu))
    pslots;
  (* v2.2 (version-gated): the transmitted set. The plan section only
     names streams delivered to at least one slot, so a stream whose
     recipients all left — still holding budget, still free for later
     joiners — would be silently dropped on restore. *)
  (match Planner.admitted planner with
  | [] -> ()
  | streams ->
      addf "admitted%s\n"
        (String.concat ""
           (List.map (fun s -> Printf.sprintf " %d" s) streams)));
  addf "%%%%instance\n%s"
    (Mmd.Io.to_string (View.materialize (Controller.view ctrl)));
  addf "%%%%plan\n%s" (Mmd.Io.assignment_to_string (Controller.plan ctrl));
  addf "%%%%end\n";
  Buffer.contents buf

let save ctrl =
  let b = body ctrl in
  Printf.sprintf "%s %d %s\n%s" magic_v2 (String.length b)
    (Prelude.Crc32.to_hex (Prelude.Crc32.digest b))
    b

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Parse_error msg)) fmt

let int_tok what tok =
  match int_of_string_opt tok with
  | Some x -> x
  | None -> fail "bad %s %S" what tok

let float_tok what tok =
  match float_of_string_opt tok with
  | Some x -> x
  | None -> fail "bad %s %S" what tok

(* Parse the body (everything after the envelope / v1 magic line). *)
let load_body lines =
  let header, rest =
    let rec split acc = function
      | [] -> fail "missing %%instance section"
      | "%%instance" :: rest -> (List.rev acc, rest)
      | line :: rest -> split (line :: acc) rest
    in
    split [] lines
  in
  let instance_lines, rest =
    let rec split acc = function
      | [] -> fail "missing %%plan section"
      | "%%plan" :: rest -> (List.rev acc, rest)
      | line :: rest -> split (line :: acc) rest
    in
    split [] rest
  in
  let plan_lines =
    let rec take acc = function
      | [] | "%%end" :: _ -> List.rev acc
      | line :: rest -> take (line :: acc) rest
    in
    take [] rest
  in
  let policy = ref (Controller.Every 64) in
  let pinned = ref [] in
  let active = ref [] in
  let free = ref None in
  let counters = ref None in
  let resilience = ref None in
  let epoch = ref None in
  let replan_hist = ref None in
  let recovery_hist = ref None in
  let pstate = ref None in
  let pslots = ref [] in
  let admitted = ref None in
  List.iter
    (fun line ->
      if String.trim line <> "" then
        match
          String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
        with
        | "policy" :: spec ->
            (match
               Controller.policy_of_string (String.concat ":" spec)
             with
            | Ok p -> policy := p
            | Error msg -> fail "%s" msg)
        | "pinned" :: ids -> pinned := List.map (int_tok "pinned id") ids
        | "active" :: ids -> active := List.map (int_tok "slot id") ids
        | "free" :: ids -> free := Some (List.map (int_tok "free slot") ids)
        | "counters" :: fields -> (
            match List.map (int_tok "counter") fields with
            | [ j; l; c; b; r; e; evals; eager; deltas ] ->
                counters := Some (j, l, c, b, r, e, evals, eager, deltas)
            | [ j; l; c; b; r; e; evals; eager; deltas; ft; q; rec_; fb ] ->
                counters := Some (j, l, c, b, r, e, evals, eager, deltas);
                resilience := Some (ft, q, rec_, fb)
            | _ -> fail "counters expects 9 or 13 fields")
        | [ "epoch"; since; util ] -> (
            match (int_of_string_opt since, float_of_string_opt util) with
            | Some s, Some u -> epoch := Some (s, u)
            | _ -> fail "bad epoch line")
        | "hist" :: which :: encoded -> (
            match Obs.Hist.decode (String.concat " " encoded) with
            | Error msg -> fail "bad %s histogram: %s" which msg
            | Ok h -> (
                match which with
                | "replan" -> replan_hist := Some h
                | "recovery" -> recovery_hist := Some h
                | other -> fail "unknown histogram %S" other))
        | "pstate" :: total :: used ->
            pstate :=
              Some
                ( float_tok "planner total" total,
                  Array.of_list (List.map (float_tok "planner used") used) )
        | "pslot" :: u :: du :: cap :: cus ->
            pslots :=
              ( int_tok "planner slot" u,
                ( float_tok "slot delivered utility" du,
                  float_tok "slot capped utility" cap,
                  Array.of_list (List.map (float_tok "slot capacity used") cus)
                ) )
              :: !pslots
        | "admitted" :: ids ->
            admitted := Some (List.map (int_tok "admitted stream") ids)
        | kw :: _ -> fail "unknown header keyword %S" kw
        | [] -> ())
    header;
  let instance =
    Mmd.Io.of_string (String.concat "\n" instance_lines ^ "\n")
  in
  let plan =
    Mmd.Io.assignment_of_string
      ~num_users:(Mmd.Instance.num_users instance)
      (String.concat "\n" plan_lines ^ "\n")
  in
  let view = View.of_materialized ~active:!active ?free:!free instance in
  let since_replan, utility_at_replan =
    match !epoch with
    | Some (s, u) -> (Some s, Some u)
    | None -> (None, None)
  in
  let deltas_applied =
    match !counters with Some (_, _, _, _, _, _, _, _, d) -> Some d | None -> None
  in
  let ctrl =
    try
      Controller.of_state ?since_replan ?deltas_applied ?utility_at_replan
        ?admitted:!admitted ~policy:!policy ~pinned:!pinned ~view ~plan ()
    with Invalid_argument msg -> fail "%s" msg
  in
  (match !counters with
  | None -> ()
  | Some (j, l, c, b, r, e, evals, eager, _deltas) ->
      Counters.restore (Controller.counters ctrl) ~joins:j ~leaves:l
        ~cost_changes:c ~budget_resizes:b ~replans:r ~evictions:e;
      Planner.add_evals (Controller.planner ctrl) ~evals ~eager_equiv:eager);
  (match !resilience with
  | None -> ()
  | Some (faults, quarantined, recoveries, fallbacks) ->
      Counters.restore_resilience (Controller.counters ctrl) ~faults
        ~quarantined ~recoveries ~fallbacks);
  (match !replan_hist with
  | Some h -> Counters.set_replan_hist (Controller.counters ctrl) h
  | None -> ());
  (match !recovery_hist with
  | Some h -> Counters.set_recovery_hist (Controller.counters ctrl) h
  | None -> ());
  (match !pstate with
  | None -> ()
  | Some (total, used) ->
      (* When the snapshot carries planner float state it must be
         complete: one pslot line per view slot. *)
      let n = View.num_slots view in
      let slots =
        Array.init n (fun u ->
            match List.assoc_opt u !pslots with
            | Some s -> s
            | None -> fail "pstate present but slot %d has no pslot line" u)
      in
      (try
         Planner.set_float_state (Controller.planner ctrl) ~total ~used ~slots
       with Invalid_argument msg -> fail "%s" msg));
  ctrl

let load_result_impl text =
  match
    let nl =
      match String.index_opt text '\n' with
      | Some i -> i
      | None -> fail "not an engine snapshot (no envelope line)"
    in
    let first = String.sub text 0 nl in
    match
      String.split_on_char ' ' first |> List.filter (fun s -> s <> "")
    with
    | [ p; "v2"; len; crc ] when p = magic_prefix ->
        let len = int_tok "body length" len in
        let stored =
          match Prelude.Crc32.of_hex crc with
          | Some c -> c
          | None -> fail "bad envelope checksum field %S" crc
        in
        let avail = String.length text - nl - 1 in
        if avail < len then
          fail "truncated snapshot (body %d of %d bytes) — torn write" avail
            len;
        let body = String.sub text (nl + 1) len in
        let actual = Prelude.Crc32.digest body in
        if actual <> stored then
          fail "snapshot checksum mismatch (stored %s, actual %s)" crc
            (Prelude.Crc32.to_hex actual);
        load_body (String.split_on_char '\n' body)
    | _ when first = magic_v1 ->
        (* Legacy un-checksummed document. *)
        load_body
          (String.split_on_char '\n'
             (String.sub text (nl + 1) (String.length text - nl - 1)))
    | _ -> fail "not an engine snapshot (bad magic)"
  with
  | ctrl -> Ok ctrl
  | exception Parse_error msg -> Error ("Snapshot.load: " ^ msg)
  | exception Failure msg -> Error ("Snapshot.load: " ^ msg)
  | exception Invalid_argument msg -> Error ("Snapshot.load: " ^ msg)

let load_result text =
  Obs.Span.with_ ~name:"snapshot.read" (fun () -> load_result_impl text)

let load text =
  match load_result text with Ok ctrl -> ctrl | Error msg -> failwith msg

let is_snapshot text =
  String.length text >= String.length magic_prefix
  && String.sub text 0 (String.length magic_prefix) = magic_prefix

let previous_path path = path ^ ".prev"

let m_write_seconds = lazy (Obs.Metrics.histogram "snapshot_write_seconds")

let write_file path ctrl =
  Obs.Span.with_ ~name:"snapshot.write" (fun () ->
      let t0 = Obs.Clock.now () in
      let tmp = path ^ ".tmp" in
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (save ctrl));
      (* Keep the old generation around: if this write turns out torn
         or corrupted, [read_file_result] falls back to it. *)
      if Sys.file_exists path then Sys.rename path (previous_path path);
      Sys.rename tmp path;
      Obs.Hist.observe (Lazy.force m_write_seconds)
        (Obs.Clock.elapsed_since t0))

type generation = Current | Previous

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read_file_result path =
  let try_load p =
    match read_all p with
    | text -> load_result text
    | exception Sys_error msg -> Error msg
  in
  match try_load path with
  | Ok ctrl -> Ok (ctrl, Current)
  | Error primary -> (
      let prev = previous_path path in
      if Sys.file_exists prev then
        match try_load prev with
        | Ok ctrl -> Ok (ctrl, Previous)
        | Error fallback ->
            Error
              (Printf.sprintf "%s; previous generation also unusable: %s"
                 primary fallback)
      else Error primary)

let read_file path =
  match read_file_result path with
  | Ok (ctrl, _) -> ctrl
  | Error msg -> failwith msg

(* A cheap structural peek: how many deltas does the snapshot on disk
   cover? Scans for the counters line without verifying the envelope —
   the recovery chooser only needs an estimate, and the verified load
   happens after (and only if) the snapshot path is chosen. *)
let peek_deltas_applied path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          match input_line ic with
          | exception End_of_file -> None
          | first when not (is_snapshot first) -> None
          | _ ->
              let rec scan () =
                match input_line ic with
                | exception End_of_file -> None
                | line -> (
                    match
                      String.split_on_char ' ' line
                      |> List.filter (fun s -> s <> "")
                    with
                    | "counters" :: fields when List.length fields >= 9 ->
                        int_of_string_opt (List.nth fields 8)
                    | "%%instance" :: _ -> None
                    | _ -> scan ())
              in
              scan ())
