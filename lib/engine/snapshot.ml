(* Engine state snapshots: a small header, then the materialized view
   in Mmd.Io instance format, then the plan in Mmd.Io plan format,
   separated by %%-section markers. *)

let magic = "mmd-engine-snapshot v1"

let save ctrl =
  let buf = Buffer.create 4096 in
  let addf fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  addf "%s\n" magic;
  addf "policy %s\n" (Controller.policy_to_string (Controller.policy ctrl));
  (match Controller.pinned ctrl with
  | [] -> ()
  | pinned ->
      addf "pinned%s\n"
        (String.concat ""
           (List.map (fun s -> Printf.sprintf " %d" s) pinned)));
  addf "active%s\n"
    (String.concat ""
       (List.map
          (fun u -> Printf.sprintf " %d" u)
          (View.active_slots (Controller.view ctrl))));
  (match View.free_list (Controller.view ctrl) with
  | [] -> ()
  | free ->
      addf "free%s\n"
        (String.concat "" (List.map (fun u -> Printf.sprintf " %d" u) free)));
  let j, l, c, b, r, e = Counters.fields (Controller.counters ctrl) in
  let planner = Controller.planner ctrl in
  addf "counters %d %d %d %d %d %d %d %d %d\n" j l c b r e
    (Planner.evals planner)
    (Planner.eager_equiv planner)
    (Controller.deltas_applied ctrl);
  addf "epoch %d %.17g\n"
    (Controller.since_replan ctrl)
    (Controller.utility_at_replan ctrl);
  addf "%%%%instance\n%s"
    (Mmd.Io.to_string (View.materialize (Controller.view ctrl)));
  addf "%%%%plan\n%s" (Mmd.Io.assignment_to_string (Controller.plan ctrl));
  addf "%%%%end\n";
  Buffer.contents buf

let fail fmt = Printf.ksprintf failwith fmt

let int_tok what tok =
  match int_of_string_opt tok with
  | Some x -> x
  | None -> fail "Snapshot.load: bad %s %S" what tok

let load text =
  let lines = String.split_on_char '\n' text in
  let header, rest =
    let rec split acc = function
      | [] -> fail "Snapshot.load: missing %%instance section"
      | "%%instance" :: rest -> (List.rev acc, rest)
      | line :: rest -> split (line :: acc) rest
    in
    split [] lines
  in
  let instance_lines, rest =
    let rec split acc = function
      | [] -> fail "Snapshot.load: missing %%plan section"
      | "%%plan" :: rest -> (List.rev acc, rest)
      | line :: rest -> split (line :: acc) rest
    in
    split [] rest
  in
  let plan_lines =
    let rec take acc = function
      | [] | "%%end" :: _ -> List.rev acc
      | line :: rest -> take (line :: acc) rest
    in
    take [] rest
  in
  (match header with
  | first :: _ when first = magic -> ()
  | _ -> fail "Snapshot.load: not an engine snapshot (bad magic)");
  let policy = ref (Controller.Every 64) in
  let pinned = ref [] in
  let active = ref [] in
  let free = ref None in
  let counters = ref None in
  let epoch = ref None in
  List.iteri
    (fun i line ->
      if i > 0 && String.trim line <> "" then
        match
          String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
        with
        | "policy" :: spec ->
            (match
               Controller.policy_of_string (String.concat ":" spec)
             with
            | Ok p -> policy := p
            | Error msg -> fail "Snapshot.load: %s" msg)
        | "pinned" :: ids -> pinned := List.map (int_tok "pinned id") ids
        | "active" :: ids -> active := List.map (int_tok "slot id") ids
        | "free" :: ids -> free := Some (List.map (int_tok "free slot") ids)
        | "counters" :: fields -> (
            match List.map (int_tok "counter") fields with
            | [ j; l; c; b; r; e; evals; eager; deltas ] ->
                counters := Some (j, l, c, b, r, e, evals, eager, deltas)
            | _ -> fail "Snapshot.load: counters expects 9 fields")
        | [ "epoch"; since; util ] -> (
            match (int_of_string_opt since, float_of_string_opt util) with
            | Some s, Some u -> epoch := Some (s, u)
            | _ -> fail "Snapshot.load: bad epoch line")
        | kw :: _ -> fail "Snapshot.load: unknown header keyword %S" kw
        | [] -> ())
    header;
  let instance =
    Mmd.Io.of_string (String.concat "\n" instance_lines ^ "\n")
  in
  let plan =
    Mmd.Io.assignment_of_string
      ~num_users:(Mmd.Instance.num_users instance)
      (String.concat "\n" plan_lines ^ "\n")
  in
  let view = View.of_materialized ~active:!active ?free:!free instance in
  let since_replan, utility_at_replan =
    match !epoch with
    | Some (s, u) -> (Some s, Some u)
    | None -> (None, None)
  in
  let deltas_applied =
    match !counters with Some (_, _, _, _, _, _, _, _, d) -> Some d | None -> None
  in
  let ctrl =
    Controller.of_state ?since_replan ?deltas_applied ?utility_at_replan
      ~policy:!policy ~pinned:!pinned ~view ~plan ()
  in
  (match !counters with
  | None -> ()
  | Some (j, l, c, b, r, e, evals, eager, _deltas) ->
      Counters.restore (Controller.counters ctrl) ~joins:j ~leaves:l
        ~cost_changes:c ~budget_resizes:b ~replans:r ~evictions:e;
      Planner.add_evals (Controller.planner ctrl) ~evals ~eager_equiv:eager);
  ctrl

let is_snapshot text =
  String.length text >= String.length magic
  && String.sub text 0 (String.length magic) = magic

let write_file path ctrl =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (save ctrl))

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      load (really_input_string ic n))
