(** Dual-certificate emitters over the exact/LP layer.

    The emitters here wrap {!Lp_relax} / {!Simplex} (dense, tight) and
    [Cert.Sparse] (tableau-free, any scale). Both produce a
    [Cert.Certificate.t] whose bound has been sealed by the
    {e independent} checker ([Cert.Checker] — a library with no
    dependency on this one or on [Simplex], enforced by the dune
    library graph), so trust flows from re-verification, never from
    the solver: call {!check} (or [Cert.Checker.check] directly) and
    believe the verdict, not the emitter. *)

type method_ = Dense | Sparse

val string_of_method : method_ -> string

val emit_dense :
  ?max_iters:int -> Mmd.Instance.t -> (Cert.Certificate.t, string) result
(** Solve the LP relaxation and lift its raw row duals (budget,
    capacity and utility-cap rows) into a certificate; the implied
    coupling/box duals are canonical-completed by the checker. The
    bound equals the LP optimum up to dual repair, i.e. it is the
    tightest certificate this layer can emit. [Error] when the simplex
    gives up — callers degrade to "no certificate".
    @raise Invalid_argument on NaN inputs (see {!Lp_relax.validate}). *)

val emit_sparse :
  ?iters:int -> ?target:float -> Mmd.Instance.t -> Cert.Certificate.t
(** The Lagrangian path ([Cert.Sparse.emit]) on the instance; never
    fails, bound loosens gracefully with fewer iterations. *)

val emit :
  ?dense_limit:int ->
  ?sparse_iters:int ->
  ?target:float ->
  Mmd.Instance.t ->
  (Cert.Certificate.t * method_, string) result
(** Auto dispatch: dense when the tableau would stay under
    [dense_limit] cells (default 2e6), sparse otherwise or when the
    dense path fails. *)

val dense_cells : Mmd.Instance.t -> int
(** Tableau cells a dense solve of the instance would allocate. *)

val check :
  ?tol:float -> Mmd.Instance.t -> Cert.Certificate.t -> Cert.Checker.verdict
(** Convenience: [Cert.Checker.check] against the instance's problem
    view. *)
