(** Dense tableau simplex for linear programs in the standard form

    {v maximize c·x  subject to  A·x <= b,  x >= 0,  b >= 0 v}

    Because every right-hand side is non-negative, the all-slack basis
    is feasible and no phase-1 is needed — which is exactly the shape of
    the MMD LP relaxation (all constraints are resource caps). Vendored
    because no LP solver package is available offline (see DESIGN.md).

    Pivoting uses Dantzig's rule with an automatic switch to Bland's
    rule (which cannot cycle) after a degeneracy threshold. *)

type result =
  | Optimal of {
      objective : float;
      solution : float array;
      duals : float array;
          (** one dual value (shadow price) per constraint row: the
              rate at which the optimum would grow per unit of extra
              right-hand side. Reported {e raw}: non-negative in exact
              arithmetic, but degenerate rows can carry eps-negative
              entries from pivot rounding. They used to be clamped to
              0 here, which silently masked that the dual vector can
              be eps-infeasible — unacceptable once duals are used as
              optimality certificates. Consumers needing feasible
              duals must repair and re-verify (see [Cert.Checker]). *)
    }
  | Unbounded  (** the objective is unbounded above on the polytope *)
  | Iteration_limit
      (** the pivot budget ran out (adversarial or numerically
          pathological instances). Reported as a value, not an
          exception, so long sweeps degrade to "no bound" instead of
          aborting. *)

val maximize :
  ?max_iters:int ->
  c:float array ->
  a:float array array ->
  b:float array ->
  unit ->
  result
(** Solve. [a] has one row per constraint, [c] one entry per variable,
    [b] one entry per constraint. [max_iters] defaults to
    [50 · (rows + cols)]; exhausting it yields {!Iteration_limit}.

    @raise Invalid_argument on dimension mismatch or a negative [b]
    entry. *)
