module I = Mmd.Instance

type method_ = Dense | Sparse

let string_of_method = function Dense -> "dense" | Sparse -> "sparse"

(* Dense tableau cells the LP build would allocate: rows × (vars +
   rows) floats. Past [dense_cells_limit] the simplex is hopeless and
   the Lagrangian path takes over. *)
let dense_cells_limit = 2_000_000

let dense_cells inst =
  let ns = I.num_streams inst and nu = I.num_users inst in
  let m = I.m inst and mc = I.mc inst in
  let ne =
    let acc = ref 0 in
    for u = 0 to nu - 1 do
      acc := !acc + Array.length (I.interesting_streams inst u)
    done;
    !acc
  in
  let rows = m + ne + (nu * (mc + 1)) + ns in
  let cols = ns + ne + rows in
  rows * cols

let emit_dense ?max_iters inst =
  match Lp_relax.solve_result ?max_iters inst with
  | Error e -> Error (Lp_relax.string_of_error e)
  | Ok lp ->
      (* Raw duals straight off the tableau — possibly eps-negative on
         degenerate rows. Sealing repairs them and recomputes the
         bound with the checker's own arithmetic, so the claim always
         matches what an independent check will find. *)
      let p = Cert.Problem.of_instance inst in
      Ok
        (Cert.Checker.seal p
           { Cert.Certificate.budget_dual = lp.Lp_relax.budget_shadow_price;
             capacity_dual = lp.Lp_relax.capacity_shadow_price;
             cap_dual = lp.Lp_relax.cap_shadow_price;
             bound = lp.Lp_relax.upper_bound })

let emit_sparse ?iters ?target inst =
  let p = Cert.Problem.of_instance inst in
  let cert, _stats = Cert.Sparse.emit ?iters ?target p in
  cert

let emit ?(dense_limit = dense_cells_limit) ?sparse_iters ?target inst =
  if dense_cells inst <= dense_limit then
    match emit_dense inst with
    | Ok cert -> Ok (cert, Dense)
    | Error _ ->
        (* The dense path failing (iteration exhaustion) is not fatal:
           the Lagrangian emitter cannot fail, only loosen. *)
        Ok (emit_sparse ?iters:sparse_iters ?target inst, Sparse)
  else Ok (emit_sparse ?iters:sparse_iters ?target inst, Sparse)

let check ?tol inst cert =
  Cert.Checker.check ?tol (Cert.Problem.of_instance inst) cert
