module I = Mmd.Instance
module A = Mmd.Assignment

type result = {
  value : float;
  assignment : Mmd.Assignment.t;
  optimal : bool;
  nodes : int;
}

type decision = In | Out | Free

(* LP upper bound for a partial decision vector. Streams decided Out
   are removed; streams decided In contribute their cost to the RHS and
   keep their y-variables (coupled to 1 instead of to x). Returns
   [neg_infinity] when the In set alone violates a budget, and
   [infinity] (sound: no pruning) when the simplex fails. *)
let lp_bound ?max_iters inst decision =
  let ns = I.num_streams inst and nu = I.num_users inst in
  let m = I.m inst and mc = I.mc inst in
  let finite = Float.is_finite in
  (* Residual budgets after the In set. *)
  let residual = Array.init m (I.budget inst) in
  let infeasible = ref false in
  for s = 0 to ns - 1 do
    if decision.(s) = In then
      for i = 0 to m - 1 do
        if finite residual.(i) then begin
          residual.(i) <- residual.(i) -. I.server_cost inst s i;
          if residual.(i) < -1e-9 then infeasible := true
        end
      done
  done;
  if !infeasible then neg_infinity
  else begin
    Array.iteri
      (fun i r -> if finite r then residual.(i) <- Float.max 0. r)
      residual;
    (* x-variables for Free streams only. *)
    let x_index = Array.make ns (-1) in
    let nx = ref 0 in
    for s = 0 to ns - 1 do
      if decision.(s) = Free then begin
        x_index.(s) <- !nx;
        incr nx
      end
    done;
    let nx = !nx in
    let edges =
      Array.of_list
        (List.concat_map
           (fun u ->
             Array.to_list (I.interesting_streams inst u)
             |> List.filter (fun s -> decision.(s) <> Out)
             |> List.map (fun s -> (u, s)))
           (List.init nu Fun.id))
    in
    let ne = Array.length edges in
    let nv = nx + ne in
    let y_index e = nx + e in
    let c = Array.make nv 0. in
    Array.iteri (fun e (u, s) -> c.(y_index e) <- I.utility inst u s) edges;
    let rows = ref [] and rhs = ref [] in
    let add_row row b =
      rows := row :: !rows;
      rhs := b :: !rhs
    in
    for i = 0 to m - 1 do
      if finite (I.budget inst i) then begin
        let row = Array.make nv 0. in
        for s = 0 to ns - 1 do
          if decision.(s) = Free then
            row.(x_index.(s)) <- I.server_cost inst s i
        done;
        add_row row residual.(i)
      end
    done;
    Array.iteri
      (fun e (_u, s) ->
        let row = Array.make nv 0. in
        row.(y_index e) <- 1.;
        if decision.(s) = Free then begin
          row.(x_index.(s)) <- -1.;
          add_row row 0.
        end
        else add_row row 1. (* In: y <= 1 *))
      edges;
    for u = 0 to nu - 1 do
      for j = 0 to mc - 1 do
        if finite (I.capacity inst u j) then begin
          let row = Array.make nv 0. in
          Array.iteri
            (fun e (u', s) ->
              if u' = u then row.(y_index e) <- I.load inst u s j)
            edges;
          add_row row (I.capacity inst u j)
        end
      done;
      if finite (I.utility_cap inst u) then begin
        let row = Array.make nv 0. in
        Array.iteri
          (fun e (u', s) ->
            if u' = u then row.(y_index e) <- I.utility inst u s)
          edges;
        add_row row (I.utility_cap inst u)
      end
    done;
    for s = 0 to ns - 1 do
      if decision.(s) = Free then begin
        let row = Array.make nv 0. in
        row.(x_index.(s)) <- 1.;
        add_row row 1.
      end
    done;
    let a = Array.of_list (List.rev !rows) in
    let b = Array.of_list (List.rev !rhs) in
    match Simplex.maximize ?max_iters ~c ~a ~b () with
    | Unbounded | Iteration_limit ->
        (* A failed bound must degrade to "prune nothing", never crash
           the search: infinity keeps the branch alive and the result
           exact (only slower). *)
        infinity
    | Optimal { objective; _ } -> objective
  end

(* Exact leaf value: per-user optimum over the In set; [None] when the
   In set itself violates a budget (the only constraint the per-user
   solver does not enforce). *)
let leaf_value inst decision =
  let avail = Array.map (fun d -> d = In) decision in
  let feasible = ref true in
  for i = 0 to I.m inst - 1 do
    let used = ref 0. in
    Array.iteri
      (fun s live -> if live then used := !used +. I.server_cost inst s i)
      avail;
    if not (Prelude.Float_ops.leq !used (I.budget inst i)) then
      feasible := false
  done;
  if not !feasible then None
  else begin
    let sets = Array.make (I.num_users inst) [] in
    let total = ref 0. in
    for u = 0 to I.num_users inst - 1 do
      let v, set = Brute_force.best_user_selection inst u avail in
      total := !total +. v;
      sets.(u) <- set
    done;
    Some (!total, A.of_sets sets)
  end

let solve ?(max_nodes = 20_000) ?lp_max_iters inst =
  let ns = I.num_streams inst in
  (* Incumbent: the LP rounding heuristic. *)
  let seed = Lp_round.run inst in
  let best_value = ref (A.utility inst seed.Lp_round.assignment) in
  let best = ref seed.Lp_round.assignment in
  let nodes = ref 0 in
  let exhausted = ref true in
  (* Branch order: root LP fraction descending; natural order if the
     root LP fails (the order is a heuristic, correctness is not
     affected). *)
  let order = Array.init ns Fun.id in
  (match Lp_relax.solve_result ?max_iters:lp_max_iters inst with
  | Ok root_lp ->
      Array.sort
        (fun s1 s2 ->
          compare root_lp.Lp_relax.stream_fraction.(s2)
            root_lp.Lp_relax.stream_fraction.(s1))
        order
  | Error _ -> ());
  let decision = Array.make ns Free in
  let rec go depth =
    if !nodes >= max_nodes then exhausted := false
    else begin
      incr nodes;
      if depth = ns then begin
        match leaf_value inst decision with
        | Some (value, assignment) when value > !best_value ->
            best_value := value;
            best := assignment
        | Some _ | None -> ()
      end
      else begin
        let bound = lp_bound ?max_iters:lp_max_iters inst decision in
        if bound > !best_value +. 1e-9 then begin
          let s = order.(depth) in
          decision.(s) <- In;
          (* In-branch only if the In set remains budget-feasible;
             lp_bound reports neg_infinity otherwise and the recursion
             prunes immediately, so no separate check is needed. *)
          go (depth + 1);
          decision.(s) <- Out;
          go (depth + 1);
          decision.(s) <- Free
        end
      end
    end
  in
  go 0;
  { value = !best_value;
    assignment = !best;
    optimal = !exhausted;
    nodes = !nodes }
