type result =
  | Optimal of { objective : float; solution : float array;
                 duals : float array }
  | Unbounded
  | Iteration_limit

let pivot_eps = 1e-10

(* Tableau layout: [rows] constraint rows over [cols = n + rows] columns
   (structural variables then slacks), plus a rhs column and an
   objective row holding reduced costs (negated, so we search for
   positive entries). *)
let maximize ?max_iters ~c ~a ~b () =
  let rows = Array.length a in
  let n = Array.length c in
  if Array.length b <> rows then
    invalid_arg "Simplex.maximize: |b| <> rows of a";
  Array.iteri
    (fun i row ->
      if Array.length row <> n then
        invalid_arg "Simplex.maximize: ragged constraint matrix";
      if b.(i) < 0. then invalid_arg "Simplex.maximize: negative rhs")
    a;
  let cols = n + rows in
  let max_iters =
    match max_iters with Some k -> k | None -> 50 * (rows + cols)
  in
  let tab = Array.make_matrix rows (cols + 1) 0. in
  for i = 0 to rows - 1 do
    Array.blit a.(i) 0 tab.(i) 0 n;
    tab.(i).(n + i) <- 1.;
    tab.(i).(cols) <- b.(i)
  done;
  (* Objective row: z.(j) is the reduced cost of column j. *)
  let z = Array.make (cols + 1) 0. in
  Array.blit c 0 z 0 n;
  let basis = Array.init rows (fun i -> n + i) in
  let choose_entering ~bland =
    if bland then begin
      let j = ref (-1) in
      (try
         for col = 0 to cols - 1 do
           if z.(col) > pivot_eps then begin
             j := col;
             raise Exit
           end
         done
       with Exit -> ());
      !j
    end
    else begin
      let j = ref (-1) and best = ref pivot_eps in
      for col = 0 to cols - 1 do
        if z.(col) > !best then begin
          best := z.(col);
          j := col
        end
      done;
      !j
    end
  in
  let choose_leaving ~bland col =
    let row = ref (-1) and best_ratio = ref infinity in
    for i = 0 to rows - 1 do
      let coeff = tab.(i).(col) in
      if coeff > pivot_eps then begin
        let ratio = tab.(i).(cols) /. coeff in
        if
          ratio < !best_ratio -. pivot_eps
          || (ratio < !best_ratio +. pivot_eps
              && !row >= 0
              && bland
              && basis.(i) < basis.(!row))
        then begin
          best_ratio := ratio;
          row := i
        end
      end
    done;
    !row
  in
  let do_pivot row col =
    let p = tab.(row).(col) in
    for j = 0 to cols do
      tab.(row).(j) <- tab.(row).(j) /. p
    done;
    for i = 0 to rows - 1 do
      if i <> row then begin
        let f = tab.(i).(col) in
        if f <> 0. then
          for j = 0 to cols do
            tab.(i).(j) <- tab.(i).(j) -. (f *. tab.(row).(j))
          done
      end
    done;
    let f = z.(col) in
    if f <> 0. then
      for j = 0 to cols do
        z.(j) <- z.(j) -. (f *. tab.(row).(j))
      done;
    basis.(row) <- col
  in
  let bland_threshold = 10 * (rows + cols) in
  let rec iterate iter =
    if iter > max_iters then Iteration_limit
    else begin
    let bland = iter > bland_threshold in
    let col = choose_entering ~bland in
    if col < 0 then begin
      (* Optimal: read the solution off the basis; the dual of row i is
         the negated reduced cost of its slack column. *)
      let solution = Array.make n 0. in
      Array.iteri
        (fun i v -> if v < n then solution.(v) <- tab.(i).(cols))
        basis;
      (* Raw, unclamped: on degenerate rows the reduced cost of a slack
         column can sit an eps below zero, and clamping here would
         silently mask that infeasibility from certificate checkers.
         Consumers that need feasible duals must repair (clamp) and
         re-verify on their side — see Cert.Checker. *)
      let duals = Array.init rows (fun i -> -.z.(n + i)) in
      Optimal { objective = -.z.(cols); solution; duals }
    end
    else begin
      let row = choose_leaving ~bland col in
      if row < 0 then Unbounded
      else begin
        do_pivot row col;
        iterate (iter + 1)
      end
    end
    end
  in
  iterate 0
