module I = Mmd.Instance

type t = {
  upper_bound : float;
  stream_fraction : float array;
  budget_shadow_price : float array;
  capacity_shadow_price : float array array;
  cap_shadow_price : float array;
  raw_dual_value : float;
  min_raw_dual : float;
}

type error = Unbounded | Iteration_limit

let string_of_error = function
  | Unbounded -> "LP reported unbounded (numeric pathology)"
  | Iteration_limit -> "simplex iteration budget exhausted"

(* [x < infinity] — the old test — classified NaN as *infinite*, so a
   NaN budget or capacity silently dropped its constraint row and
   weakened the relaxation with no error; and it classified
   neg_infinity as finite. Float.is_finite plus the explicit NaN
   rejection below closes both holes. *)
let finite = Float.is_finite

let validate inst =
  let check what v =
    if Float.is_nan v then
      invalid_arg
        (Printf.sprintf
           "Lp_relax: %s is NaN — refusing to drop its constraint row" what)
  in
  let ns = I.num_streams inst and nu = I.num_users inst in
  let m = I.m inst and mc = I.mc inst in
  for i = 0 to m - 1 do
    check (Printf.sprintf "budget %d" i) (I.budget inst i);
    for s = 0 to ns - 1 do
      check (Printf.sprintf "server_cost (%d, %d)" s i) (I.server_cost inst s i)
    done
  done;
  for u = 0 to nu - 1 do
    check (Printf.sprintf "utility_cap %d" u) (I.utility_cap inst u);
    for j = 0 to mc - 1 do
      check (Printf.sprintf "capacity (%d, %d)" u j) (I.capacity inst u j)
    done;
    Array.iter
      (fun s ->
        check (Printf.sprintf "utility (%d, %d)" u s) (I.utility inst u s);
        for j = 0 to mc - 1 do
          check (Printf.sprintf "load (%d, %d, %d)" u s j) (I.load inst u s j)
        done)
      (I.interesting_streams inst u)
  done

(* Row bookkeeping so duals can be routed back to their resource. *)
type row_tag = Budget of int | Capacity of int * int | Cap of int | Other

let solve_result ?max_iters inst =
  validate inst;
  let ns = I.num_streams inst and nu = I.num_users inst in
  let m = I.m inst and mc = I.mc inst in
  (* Edge list: one y-variable per positive-utility (user, stream). *)
  let edges =
    Array.of_list
      (List.concat_map
         (fun u ->
           Array.to_list (I.interesting_streams inst u)
           |> List.map (fun s -> (u, s)))
         (List.init nu Fun.id))
  in
  let ne = Array.length edges in
  let nv = ns + ne in
  let y_index e = ns + e in
  let c = Array.make nv 0. in
  Array.iteri (fun e (u, s) -> c.(y_index e) <- I.utility inst u s) edges;
  let rows = ref [] and rhs = ref [] and tags = ref [] in
  let add_row ?(tag = Other) row b =
    rows := row :: !rows;
    rhs := b :: !rhs;
    tags := tag :: !tags
  in
  (* Server budgets. *)
  for i = 0 to m - 1 do
    if finite (I.budget inst i) then begin
      let row = Array.make nv 0. in
      for s = 0 to ns - 1 do
        row.(s) <- I.server_cost inst s i
      done;
      add_row ~tag:(Budget i) row (I.budget inst i)
    end
  done;
  (* Coupling y <= x. *)
  Array.iteri
    (fun e (_u, s) ->
      let row = Array.make nv 0. in
      row.(y_index e) <- 1.;
      row.(s) <- -1.;
      add_row row 0.)
    edges;
  (* User capacities and utility caps. *)
  for u = 0 to nu - 1 do
    for j = 0 to mc - 1 do
      if finite (I.capacity inst u j) then begin
        let row = Array.make nv 0. in
        Array.iteri
          (fun e (u', s) ->
            if u' = u then row.(y_index e) <- I.load inst u s j)
          edges;
        add_row ~tag:(Capacity (u, j)) row (I.capacity inst u j)
      end
    done;
    if finite (I.utility_cap inst u) then begin
      let row = Array.make nv 0. in
      Array.iteri
        (fun e (u', s) ->
          if u' = u then row.(y_index e) <- I.utility inst u s)
        edges;
      add_row ~tag:(Cap u) row (I.utility_cap inst u)
    end
  done;
  (* x <= 1. *)
  for s = 0 to ns - 1 do
    let row = Array.make nv 0. in
    row.(s) <- 1.;
    add_row row 1.
  done;
  let a = Array.of_list (List.rev !rows) in
  let b = Array.of_list (List.rev !rhs) in
  let tags = Array.of_list (List.rev !tags) in
  match Simplex.maximize ?max_iters ~c ~a ~b () with
  | Simplex.Unbounded ->
      (* "Impossible" — the polytope lies in [0,1]^nv — but numeric
         pathologies can manufacture it, and a crashed sweep is worse
         than a run without a bound. *)
      Error Unbounded
  | Simplex.Iteration_limit -> Error Iteration_limit
  | Simplex.Optimal { objective; solution; duals } ->
      let budget_shadow_price = Array.make m 0. in
      let capacity_shadow_price =
        Array.init nu (fun _ -> Array.make mc 0.)
      in
      let cap_shadow_price = Array.make nu 0. in
      let raw_dual_value = ref 0. in
      let min_raw_dual = ref infinity in
      Array.iteri
        (fun row dual ->
          raw_dual_value := !raw_dual_value +. (dual *. b.(row));
          if dual < !min_raw_dual then min_raw_dual := dual;
          match tags.(row) with
          | Budget i -> budget_shadow_price.(i) <- dual
          | Capacity (u, j) -> capacity_shadow_price.(u).(j) <- dual
          | Cap u -> cap_shadow_price.(u) <- dual
          | Other -> ())
        duals;
      Ok
        { upper_bound = objective;
          stream_fraction = Array.sub solution 0 ns;
          budget_shadow_price;
          capacity_shadow_price;
          cap_shadow_price;
          raw_dual_value = !raw_dual_value;
          min_raw_dual = !min_raw_dual }

let solve inst =
  match solve_result inst with
  | Ok t -> t
  | Error e -> invalid_arg (Printf.sprintf "Lp_relax.solve: %s" (string_of_error e))
