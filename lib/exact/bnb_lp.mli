(** Branch-and-bound exact solver with LP bounding.

    Branches on streams (transmit / don't transmit) in the order of the
    root LP's fractional values; each node is bounded by the LP
    relaxation of its residual subproblem and pruned against the
    incumbent (initialized from {!Lp_round}). Leaves are evaluated by
    the exact per-user selection of {!Brute_force}.

    Reaches exact optima noticeably beyond {!Brute_force}'s comfortable
    range (the LP bound prunes most of the tree), at the price of one
    simplex solve per node. The node budget makes it an anytime
    algorithm: when exhausted, the incumbent is returned with
    [optimal = false]. *)

type result = {
  value : float;
  assignment : Mmd.Assignment.t;
  optimal : bool;   (** true when the search space was exhausted *)
  nodes : int;      (** branch-and-bound nodes expanded *)
}

val solve : ?max_nodes:int -> ?lp_max_iters:int -> Mmd.Instance.t -> result
(** Solve. [max_nodes] defaults to 20_000. The returned assignment is
    always feasible. [lp_max_iters] caps the per-node simplex pivots
    (testing hook); a failed LP bound degrades to "prune nothing", so
    the search stays exact and never crashes on solver pathologies. *)
