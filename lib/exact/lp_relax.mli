(** LP relaxation of MMD — an efficiently computable upper bound on the
    optimal utility, used to measure approximation ratios on instances
    too large for exact search.

    Variables: [x_S ∈ [0,1]] (stream transmitted fractionally) and
    [y_{u,S} ∈ [0, x_S]] for every positive-utility pair. Constraints:
    every finite server budget on [x], every finite user capacity on
    [y], and each finite utility cap [W_u] as a linear cap on
    [Σ_S w_u(S)·y_{u,S}] (the LP image of the paper's capped
    objective). The LP value dominates the utility of every feasible
    {e and} every semi-feasible integral assignment.

    The solution also carries the dual solution ({e shadow prices}):
    the marginal utility of one more unit of each budget or capacity —
    and the raw material for optimality certificates (see
    [Exact.Certificate] / [Cert]). *)

type t = {
  upper_bound : float;            (** the LP optimum *)
  stream_fraction : float array;  (** optimal [x] values per stream *)
  budget_shadow_price : float array;
      (** per server measure: marginal utility per unit of budget;
          [0.] for infinite or non-binding budgets. {e Raw} simplex
          duals: degenerate rows can carry eps-negative entries (see
          {!Simplex.result}); certificate consumers repair + re-verify,
          display consumers may clamp at 0. *)
  capacity_shadow_price : float array array;
      (** per user per capacity measure, likewise *)
  cap_shadow_price : float array;
      (** per user: dual of the utility-cap row ([0.] when [W_u] is
          infinite), likewise raw *)
  raw_dual_value : float;
      (** [b·y] over the raw dual vector of {e all} rows, unclamped —
          in exact arithmetic equal to [upper_bound] (strong duality);
          with an eps-negative dual it can land {e below} the primal
          optimum, which is why certificates must repair before
          evaluating *)
  min_raw_dual : float;
      (** smallest raw dual entry across all rows (diagnostic;
          [< 0.] exposes the eps-infeasibility) *)
}

type error = Unbounded | Iteration_limit

val string_of_error : error -> string

val validate : Mmd.Instance.t -> unit
(** @raise Invalid_argument if any budget, capacity, cost, load,
    utility or utility cap is NaN. A NaN here previously classified as
    "infinite" and silently dropped the constraint row; bounds from a
    weakened system must never be reported, so this is a hard error. *)

val solve_result : ?max_iters:int -> Mmd.Instance.t -> (t, error) result
(** Build and solve the relaxation. [Error] on simplex iteration
    exhaustion or a (numerically pathological) unbounded report, so
    callers — branch-and-bound, the certificate emitters, long bench
    sweeps — degrade to "no bound" instead of crashing.
    @raise Invalid_argument on NaN input (see {!validate}). *)

val solve : Mmd.Instance.t -> t
(** {!solve_result}, raising [Invalid_argument] on [Error]. *)
