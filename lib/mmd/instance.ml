type t = {
  name : string;
  num_streams : int;
  num_users : int;
  m : int;
  mc : int;
  server_cost : float array array;      (* stream × m *)
  budget : float array;                 (* m *)
  load : float array array array;       (* user × stream × mc *)
  capacity : float array array;         (* user × mc *)
  utility : float array array;          (* user × stream *)
  utility_cap : float array;            (* user *)
  interested_users : int array array;   (* stream -> users, ascending *)
  interesting_streams : int array array;(* user -> streams, ascending *)
  stream_total_utility : float array;   (* stream *)
}

let check_nonneg what x =
  if x < 0. || Float.is_nan x then
    invalid_arg (Printf.sprintf "Instance.create: negative or NaN %s" what)

let create ?(name = "unnamed") ?mc ~server_cost ~budget ~load ~capacity
    ~utility ~utility_cap () =
  let num_streams = Array.length server_cost in
  let m = Array.length budget in
  let num_users = Array.length utility in
  let mc =
    match mc with
    | Some v ->
        if v < 0 then invalid_arg "Instance.create: negative mc";
        if num_users > 0 && Array.length capacity.(0) <> v then
          invalid_arg "Instance.create: capacity row length <> mc";
        v
    | None -> if num_users = 0 then 0 else Array.length capacity.(0)
  in
  if Array.length capacity <> num_users then
    invalid_arg "Instance.create: capacity rows <> num_users";
  if Array.length load <> num_users then
    invalid_arg "Instance.create: load rows <> num_users";
  if Array.length utility_cap <> num_users then
    invalid_arg "Instance.create: utility_cap length <> num_users";
  Array.iteri
    (fun s costs ->
      if Array.length costs <> m then
        invalid_arg "Instance.create: server_cost row length <> m";
      Array.iteri
        (fun i c ->
          check_nonneg "server cost" c;
          if c > budget.(i) then
            invalid_arg
              (Printf.sprintf
                 "Instance.create: c_%d(S_%d) = %g exceeds budget %g" i s c
                 budget.(i)))
        costs)
    server_cost;
  Array.iter (fun b -> check_nonneg "budget" b) budget;
  Array.iteri
    (fun u caps ->
      if Array.length caps <> mc then
        invalid_arg "Instance.create: ragged capacity rows";
      Array.iter (fun k -> check_nonneg "capacity" k) caps;
      if Array.length load.(u) <> num_streams then
        invalid_arg "Instance.create: load row length <> num_streams";
      Array.iter
        (fun per_stream ->
          if Array.length per_stream <> mc then
            invalid_arg "Instance.create: load entry length <> mc";
          Array.iter (fun k -> check_nonneg "load" k) per_stream)
        load.(u);
      if Array.length utility.(u) <> num_streams then
        invalid_arg "Instance.create: utility row length <> num_streams";
      Array.iter (fun w -> check_nonneg "utility" w) utility.(u);
      check_nonneg "utility cap" utility_cap.(u))
    capacity;
  (* Enforce the paper's assumption: a stream that individually violates
     some capacity of a user yields zero utility for that user. *)
  let utility = Array.map Array.copy utility in
  for u = 0 to num_users - 1 do
    for s = 0 to num_streams - 1 do
      let violates = ref false in
      for j = 0 to mc - 1 do
        if load.(u).(s).(j) > capacity.(u).(j) then violates := true
      done;
      if !violates then utility.(u).(s) <- 0.
    done
  done;
  let interested_users =
    Array.init num_streams (fun s ->
        let acc = ref [] in
        for u = num_users - 1 downto 0 do
          if utility.(u).(s) > 0. then acc := u :: !acc
        done;
        Array.of_list !acc)
  in
  let interesting_streams =
    Array.init num_users (fun u ->
        let acc = ref [] in
        for s = num_streams - 1 downto 0 do
          if utility.(u).(s) > 0. then acc := s :: !acc
        done;
        Array.of_list !acc)
  in
  let stream_total_utility =
    Array.init num_streams (fun s ->
        Array.fold_left
          (fun acc u -> acc +. utility.(u).(s))
          0. interested_users.(s))
  in
  { name; num_streams; num_users; m; mc; server_cost; budget; load;
    capacity; utility; utility_cap; interested_users; interesting_streams;
    stream_total_utility }

let name t = t.name
let num_streams t = t.num_streams
let num_users t = t.num_users
let m t = t.m
let mc t = t.mc
let server_cost t s i = t.server_cost.(s).(i)
let budget t i = t.budget.(i)
let load t u s j = t.load.(u).(s).(j)
let capacity t u j = t.capacity.(u).(j)
let utility t u s = t.utility.(u).(s)
let utility_cap t u = t.utility_cap.(u)
let interested_users t s = t.interested_users.(s)
let interesting_streams t u = t.interesting_streams.(u)
let stream_total_utility t s = t.stream_total_utility.(s)

let size t =
  let edges =
    Array.fold_left
      (fun acc users -> acc + Array.length users)
      0 t.interested_users
  in
  edges + t.num_streams + t.num_users

let max_server_cost t i =
  let best = ref 0. in
  for s = 0 to t.num_streams - 1 do
    best := Float.max !best t.server_cost.(s).(i)
  done;
  !best

let is_smd_shaped t = t.m = 1 && t.mc <= 1

let pp ppf t =
  Format.fprintf ppf "%s: %d streams, %d users, m=%d, mc=%d" t.name
    t.num_streams t.num_users t.m t.mc

let pp_detail ppf t =
  pp ppf t;
  Format.fprintf ppf "@.budgets: @[%a@]@."
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       (fun ppf b -> Format.fprintf ppf "%g" b))
    t.budget;
  for s = 0 to t.num_streams - 1 do
    Format.fprintf ppf "stream %d: costs" s;
    Array.iter (fun c -> Format.fprintf ppf " %g" c) t.server_cost.(s);
    Format.fprintf ppf "@."
  done;
  for u = 0 to t.num_users - 1 do
    Format.fprintf ppf "user %d: W=%g caps" u t.utility_cap.(u);
    Array.iter (fun k -> Format.fprintf ppf " %g" k) t.capacity.(u);
    Format.fprintf ppf "@.";
    for s = 0 to t.num_streams - 1 do
      if t.utility.(u).(s) > 0. then begin
        Format.fprintf ppf "  w(%d)=%g loads" s t.utility.(u).(s);
        Array.iter (fun k -> Format.fprintf ppf " %g" k) t.load.(u).(s);
        Format.fprintf ppf "@."
      end
    done
  done
