(** The Multi-budget Multi-client Distribution (MMD) problem instance.

    Mirrors the formal definition in §1.1 of Patt-Shamir & Rawitz:
    - a set of streams [0 .. num_streams-1] and users [0 .. num_users-1];
    - [m] server cost measures: stream [s] costs [server_cost s i] in
      measure [i], capped by budget [budget i] (may be [infinity]);
    - [mc] user capacity measures: stream [s] loads user [u] by
      [load u s j] in measure [j], capped by [capacity u j];
    - utilities [utility u s >= 0], with per-user utility cap
      [utility_cap u] (the bound [W_u] of §2; [infinity] when absent).

    The paper's standing assumptions are enforced by {!create}:
    [server_cost s i <= budget i] for all [s, i], and [utility u s = 0]
    whenever some load exceeds the corresponding capacity. *)

type t

(** {1 Construction} *)

val create :
  ?name:string ->
  ?mc:int ->
  server_cost:float array array ->
  budget:float array ->
  load:float array array array ->
  capacity:float array array ->
  utility:float array array ->
  utility_cap:float array ->
  unit ->
  t
(** Build and validate an instance.

    Dimensions: [server_cost] is [num_streams × m]; [budget] is [m];
    [load] is [num_users × num_streams × mc]; [capacity] is
    [num_users × mc]; [utility] is [num_users × num_streams];
    [utility_cap] is [num_users]. [mc = 0] (no user capacities) is
    allowed, in which case [load] rows are empty arrays. [mc] is
    normally inferred from the capacity rows; pass it explicitly for a
    {e catalog-only} instance (zero users) that churned-in users will
    later join with [mc]-ary loads — the sharded engine builds its
    per-shard initial worlds this way.

    Utilities of streams that individually violate a user capacity are
    forced to [0] (the paper's assumption [w_u(S) = 0] if
    [k^u_j(S) > K^u_j]).

    @raise Invalid_argument on inconsistent dimensions, negative costs,
    loads, utilities, budgets or capacities, or a stream whose server
    cost exceeds a budget. *)

(** {1 Accessors} *)

val name : t -> string
val num_streams : t -> int
val num_users : t -> int

val m : t -> int
(** Number of server cost measures. *)

val mc : t -> int
(** Number of user capacity measures. *)

val server_cost : t -> int -> int -> float
(** [server_cost t s i] is [c_i(S_s)]. *)

val budget : t -> int -> float
(** [budget t i] is [B_i]. *)

val load : t -> int -> int -> int -> float
(** [load t u s j] is [k^u_j(S_s)]. *)

val capacity : t -> int -> int -> float
(** [capacity t u j] is [K^u_j]. *)

val utility : t -> int -> int -> float
(** [utility t u s] is [w_u(S_s)]. *)

val utility_cap : t -> int -> float
(** [utility_cap t u] is [W_u]. *)

val interested_users : t -> int -> int array
(** Users [u] with [utility t u s > 0], ascending. Memoized at
    {!create} time: every call returns the {e same} physical array in
    O(1), so marginal-evaluation inner loops may re-ask freely.
    Callers must treat the array as immutable. *)

val interesting_streams : t -> int -> int array
(** Streams [s] with [utility t u s > 0], ascending. Memoized at
    {!create} time like {!interested_users}; treat as immutable. *)

val stream_total_utility : t -> int -> float
(** [w(S)] — sum of [utility u s] over all users. Precomputed. *)

(** {1 Derived quantities} *)

val size : t -> int
(** The input length [n] used in the paper's bounds: number of
    user–stream pairs with positive utility, plus streams and users. *)

val max_server_cost : t -> int -> float
(** [max_server_cost t i] is [max_S c_i(S)]. *)

val is_smd_shaped : t -> bool
(** True when [m = 1] and [mc <= 1] — the instance is directly an SMD
    instance (§2–3). *)

val pp : Format.formatter -> t -> unit
(** Human-readable one-line summary (name and dimensions). *)

val pp_detail : Format.formatter -> t -> unit
(** Full dump of costs, budgets, loads, capacities and utilities;
    intended for debugging small instances. *)
