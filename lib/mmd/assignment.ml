type t = { sets : int list array (* per user, sorted ascending, no dups *) }

let sort_dedup streams =
  List.sort_uniq compare streams

let empty ~num_users = { sets = Array.make num_users [] }

let of_sets sets = { sets = Array.map sort_dedup sets }

let of_range inst streams =
  let streams = sort_dedup streams in
  let sets = Array.make (Instance.num_users inst) [] in
  List.iter
    (fun s ->
      Array.iter
        (fun u -> sets.(u) <- s :: sets.(u))
        (Instance.interested_users inst s))
    streams;
  { sets = Array.map List.rev sets }

let of_bitset ~num_users ~num_streams bits =
  if Prelude.Bitset.length bits <> num_users * num_streams then
    invalid_arg "Assignment.of_bitset: bitset length <> users * streams";
  { sets =
      Array.init num_users (fun u ->
          let base = u * num_streams in
          let acc = ref [] in
          for s = num_streams - 1 downto 0 do
            if Prelude.Bitset.get bits (base + s) then acc := s :: !acc
          done;
          !acc) }

let to_bitset ~num_streams t =
  let nu = Array.length t.sets in
  let bits = Prelude.Bitset.create (nu * num_streams) in
  Array.iteri
    (fun u streams ->
      let base = u * num_streams in
      List.iter (fun s -> Prelude.Bitset.set bits (base + s)) streams)
    t.sets;
  bits

let user_streams t u = t.sets.(u)
let assigns t u s = List.mem s t.sets.(u)
let num_users t = Array.length t.sets

let range t =
  Array.fold_left (fun acc streams -> List.rev_append streams acc) [] t.sets
  |> sort_dedup

let add t ~user ~stream =
  if List.mem stream t.sets.(user) then t
  else begin
    let sets = Array.copy t.sets in
    sets.(user) <- sort_dedup (stream :: sets.(user));
    { sets }
  end

let restrict_users t keep =
  { sets = Array.mapi (fun u streams -> List.filter (keep u) streams) t.sets }

let restrict_range t keep =
  restrict_users t (fun _u s -> keep s)

let union a b =
  if Array.length a.sets <> Array.length b.sets then
    invalid_arg "Assignment.union: user counts differ";
  { sets =
      Array.mapi (fun u sa -> sort_dedup (List.rev_append sa b.sets.(u)))
        a.sets }

let server_cost inst t i =
  List.fold_left (fun acc s -> acc +. Instance.server_cost inst s i) 0.
    (range t)

let user_load inst t u j =
  List.fold_left (fun acc s -> acc +. Instance.load inst u s j) 0. t.sets.(u)

let user_utility inst t u =
  List.fold_left (fun acc s -> acc +. Instance.utility inst u s) 0. t.sets.(u)

let utility inst t =
  let total = ref 0. in
  for u = 0 to Array.length t.sets - 1 do
    total :=
      !total +. Float.min (Instance.utility_cap inst u) (user_utility inst t u)
  done;
  !total

let uncapped_utility inst t =
  let total = ref 0. in
  for u = 0 to Array.length t.sets - 1 do
    total := !total +. user_utility inst t u
  done;
  !total

type violation =
  | Budget_exceeded of { measure : int; cost : float; budget : float }
  | Capacity_exceeded of
      { user : int; measure : int; load : float; capacity : float }
  | Utility_cap_exceeded of { user : int; utility : float; cap : float }

let violations ?(eps = Prelude.Float_ops.default_eps) ?(check_caps = false)
    inst t =
  let acc = ref [] in
  for i = Instance.m inst - 1 downto 0 do
    let cost = server_cost inst t i in
    let budget = Instance.budget inst i in
    if not (Prelude.Float_ops.leq ~eps cost budget) then
      acc := Budget_exceeded { measure = i; cost; budget } :: !acc
  done;
  for u = Array.length t.sets - 1 downto 0 do
    for j = Instance.mc inst - 1 downto 0 do
      let load = user_load inst t u j in
      let capacity = Instance.capacity inst u j in
      if not (Prelude.Float_ops.leq ~eps load capacity) then
        acc := Capacity_exceeded { user = u; measure = j; load; capacity }
               :: !acc
    done;
    if check_caps then begin
      let w = user_utility inst t u in
      let cap = Instance.utility_cap inst u in
      if not (Prelude.Float_ops.leq ~eps w cap) then
        acc := Utility_cap_exceeded { user = u; utility = w; cap } :: !acc
    end
  done;
  !acc

let is_feasible ?eps inst t = violations ?eps ~check_caps:false inst t = []

let pp_violation ppf = function
  | Budget_exceeded { measure; cost; budget } ->
      Format.fprintf ppf "server budget %d exceeded: cost %g > budget %g"
        measure cost budget
  | Capacity_exceeded { user; measure; load; capacity } ->
      Format.fprintf ppf "user %d capacity %d exceeded: load %g > cap %g"
        user measure load capacity
  | Utility_cap_exceeded { user; utility; cap } ->
      Format.fprintf ppf "user %d utility cap exceeded: %g > %g" user utility
        cap

let pp ppf t =
  Array.iteri
    (fun u streams ->
      if streams <> [] then begin
        Format.fprintf ppf "u%d <- {" u;
        List.iteri
          (fun idx s ->
            if idx > 0 then Format.pp_print_string ppf ", ";
            Format.fprintf ppf "%d" s)
          streams;
        Format.fprintf ppf "}@ "
      end)
    t.sets
