(** Assignments of streams to users, and their costs and utilities.

    An assignment [A] maps each user [u] to a set of streams [A(u)]
    (Fig. 2 of the paper). Its {e range} [S(A)] is the set of streams
    the server must transmit. The paper distinguishes:

    - {e feasible} assignments, which satisfy every server budget and
      user capacity constraint, and
    - {e semi-feasible} assignments (§2), which satisfy the server
      budgets but may overflow each user's utility cap by at most one
      stream; their utility is the capped sum
      [Σ_u min(W_u, w_u(A(u)))].

    {!utility} always computes the capped (semi-feasible) objective,
    which coincides with the plain sum on feasible assignments whose
    users are within their caps. *)

type t
(** An immutable assignment over a fixed instance shape. *)

val empty : num_users:int -> t
(** Assignment with [A(u) = ∅] for every user. *)

val of_sets : int list array -> t
(** Build from per-user stream lists (duplicates are removed). *)

val of_range : Instance.t -> int list -> t
(** [of_range inst streams] assigns every stream in [streams] to every
    interested user (all [u] with [w_u(S) > 0]). This is the canonical
    completion used throughout §2: once the server transmits [S],
    giving it to more interested users never hurts the capped
    objective. *)

val of_bitset : num_users:int -> num_streams:int -> Prelude.Bitset.t -> t
(** Build from a flat user-major membership bitset: bit
    [u * num_streams + s] set means user [u] receives stream [s].
    This is the compact working representation used by the mutable
    solver states ({!Algorithms.Greedy} in particular).

    @raise Invalid_argument when the bitset length differs from
    [num_users * num_streams]. *)

val to_bitset : num_streams:int -> t -> Prelude.Bitset.t
(** Flat user-major membership bitset of the assignment (inverse of
    {!of_bitset}); gives O(1) {!assigns}-style checks to inner loops
    that would otherwise scan per-user lists. [num_streams] must
    exceed every assigned stream id. *)

val user_streams : t -> int -> int list
(** Streams assigned to user [u], ascending. *)

val assigns : t -> int -> int -> bool
(** [assigns a u s] — does user [u] receive stream [s]? *)

val range : t -> int list
(** [S(A)]: streams assigned to at least one user, ascending. *)

val num_users : t -> int

val add : t -> user:int -> stream:int -> t
(** Functional update: give [stream] to [user]. *)

val restrict_users : t -> (int -> int -> bool) -> t
(** [restrict_users a keep] drops stream [s] from user [u] whenever
    [keep u s] is false. *)

val restrict_range : t -> (int -> bool) -> t
(** Keep only streams [s] with [keep s], for every user. *)

val union : t -> t -> t
(** Pointwise union of per-user sets. Requires equal user counts. *)

(** {1 Measures against an instance} *)

val server_cost : Instance.t -> t -> int -> float
(** [c_i(A)]: cost of the range in measure [i]. *)

val user_load : Instance.t -> t -> int -> int -> float
(** [k^u_j(A)]: load of [A(u)] on user [u] in measure [j]. *)

val user_utility : Instance.t -> t -> int -> float
(** Uncapped per-user utility [w_u(A(u))]. *)

val utility : Instance.t -> t -> float
(** Capped objective [w(A) = Σ_u min (W_u, w_u(A(u)))]. *)

val uncapped_utility : Instance.t -> t -> float
(** Plain sum [Σ_u w_u(A(u))], with no utility caps applied. *)

type violation =
  | Budget_exceeded of { measure : int; cost : float; budget : float }
  | Capacity_exceeded of
      { user : int; measure : int; load : float; capacity : float }
  | Utility_cap_exceeded of { user : int; utility : float; cap : float }

val violations :
  ?eps:float -> ?check_caps:bool -> Instance.t -> t -> violation list
(** All constraint violations, with tolerance [eps]
    (default {!Prelude.Float_ops.default_eps}). When [check_caps] is
    true (default false) utility caps [W_u] are also treated as hard
    constraints — the paper treats them as objective caps, not
    feasibility constraints, so the default matches the paper. *)

val is_feasible : ?eps:float -> Instance.t -> t -> bool
(** [violations] is empty (with [check_caps:false]). *)

val pp_violation : Format.formatter -> violation -> unit
val pp : Format.formatter -> t -> unit
