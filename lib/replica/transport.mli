(** One directed replication link (primary → follower).

    The in-process transport behind the WAL-shipping layer: an ordered
    frame queue ({!Prelude.Chan}) with an armable fault stage in front
    of it, so the chaos harness can corrupt exactly one delivery at a
    time and the protocol's healing paths (CRC rejection, duplicate
    suppression, gap retransmit) can be exercised deterministically.
    The interface is deliberately byte-oriented — [send]/[recv] move
    opaque strings — so a socket-backed transport can replace this
    module without the replication protocol changing. *)

type fault =
  | Drop  (** the next sent frame vanishes *)
  | Duplicate  (** the next sent frame is delivered twice *)
  | Reorder
      (** the next sent frame is held back and delivered {e after} the
          following send (the two frames swap); if no further send
          happens, the held frame is released to the receiver *)
  | Truncate  (** the next sent frame is cut to half its bytes *)

type t

val create : unit -> t

val send : t -> string -> unit
(** Enqueue a frame for delivery, applying (and disarming) the armed
    fault if any. *)

val recv : t -> string option
(** Next delivered frame in order; [None] when the link is idle. A
    frame held by {!Reorder} is released once the queue is empty — it
    can no longer be overtaken. *)

val drain : t -> string list
(** Every deliverable frame, in order. *)

val pending : t -> int
(** Frames queued (including a held one). *)

val arm : t -> fault -> unit
(** Arm [fault] for the next {!send}. Re-arming replaces the previous
    armed fault. *)

val clear : t -> unit
(** Drop everything in flight and disarm — the link's end crashed. *)

val stats : t -> int * int * int * int
(** [(drops, duplicates, reorders, truncations)] applied so far. *)
