(** One directed replication link (primary → follower).

    The replication protocol moves opaque strings over a
    [send]/[recv] contract, so the link behind it is swappable: the
    in-process queue backend here (a {!Prelude.Chan} of whole frames)
    and the socket backend in {!Transport_socket} (length-prefixed
    frames over a real fd) expose the same {!link} surface and share
    the same armable fault stage ({!Gate}), so the chaos harness
    drives identical fault semantics through both.

    Faults are one-shot: {!arm} stages exactly one corruption for the
    next {!send}, and the protocol's healing paths (CRC rejection,
    duplicate suppression, gap retransmit, reconnect) are exercised
    deterministically — no randomness lives in the transport. *)

type fault =
  | Drop  (** the next sent frame vanishes *)
  | Duplicate  (** the next sent frame is delivered twice *)
  | Reorder
      (** the next sent frame is held back and delivered {e after} the
          following send (the two frames swap); equivalent to
          [Hold 1] *)
  | Hold of int
      (** the next sent frame is held back and delivered only after
          [n] further sends have gone out (a long delay, not a loss);
          if the link goes idle first, the frame is released — it can
          no longer be overtaken *)
  | Truncate
      (** the next sent frame is cut short mid-bytes: the queue
          backend delivers half the frame's characters, the socket
          backend writes half the {e encoded} frame and tears the
          connection — a torn final frame on the wire *)
  | Partition of int
      (** the link partitions: the next sent frame and every frame
          after it are buffered (nothing delivered) until [n] further
          sends have elapsed, then everything is released in order —
          delay, not loss. An idle link heals the partition early. *)
  | Reset
      (** the connection drops abortively: the triggering frame and
          everything in flight at the transport level are lost (the
          socket backend reconnects underneath); frames held by the
          fault stage survive *)

type stats = {
  drops : int;
  dups : int;
  reorders : int;
  truncations : int;
  holds : int;
  partitions : int;
  resets : int;
}

val no_stats : stats
(** All-zero counters. *)

val stats_total : stats -> int
(** Sum of every counter — faults applied over the link's lifetime. *)

(** The armable fault stage, shared by every backend. A backend
    supplies its primitive I/O as {!Gate.io} callbacks and routes each
    outgoing frame through {!Gate.send}; the gate decides which bytes
    actually reach the wire and accounts the faults it applies. *)
module Gate : sig
  type t

  type io = {
    deliver : string -> unit;  (** put one frame on the wire, intact *)
    truncate : string -> unit;
        (** deliver a torn version of the frame (backend chooses the
            byte-level meaning of "torn") *)
    reset : unit -> unit;
        (** lose everything in flight at the transport level *)
  }

  val create : unit -> t

  val send : t -> io -> string -> unit
  (** Route one frame through the armed fault (if any, disarming it),
      tick held-frame and partition countdowns, and release whatever
      has come due. *)

  val on_idle : t -> io -> bool
  (** The receiver found the link idle: heal an open partition and
      release every held frame (they can no longer be overtaken).
      Returns [true] when anything was released. *)

  val pending : t -> int
  (** Frames the gate is sitting on (held + partition-buffered). *)

  val arm : t -> fault -> unit
  val clear : t -> unit
  val stats : t -> stats
end

(** A backend-agnostic handle to one link. [Group] and the chaos
    harness speak only this type, so a replica set can mix queue and
    socket links freely. *)
type link = {
  send : string -> unit;
  recv : unit -> string option;
  pending : unit -> int;
      (** frames queued for delivery, including gate-held ones *)
  arm : fault -> unit;
  clear : unit -> unit;  (** drop everything in flight and disarm *)
  stats : unit -> stats;
  close : unit -> unit;
      (** release OS resources; the link is dead afterwards *)
}

val drain : link -> string list
(** Every deliverable frame, in order. *)

(** {1 In-process queue backend} *)

type t

val create : unit -> t

val send : t -> string -> unit
(** Enqueue a frame for delivery, applying (and disarming) the armed
    fault if any. *)

val recv : t -> string option
(** Next delivered frame in order; [None] when the link is idle. A
    frame held by {!Reorder}/{!Hold} is released once the queue is
    empty — it can no longer be overtaken — and an idle link heals an
    open {!Partition}. *)

val pending : t -> int
(** Frames queued (including gate-held ones). *)

val arm : t -> fault -> unit
(** Arm [fault] for the next {!send}. Re-arming replaces the previous
    armed fault. *)

val clear : t -> unit
(** Drop everything in flight and disarm — the link's end crashed. *)

val stats : t -> stats

val link_of : t -> link
(** The backend-agnostic view of a queue transport. *)

val queue_link : unit -> link
(** A fresh in-process link ([link_of (create ())]). *)
