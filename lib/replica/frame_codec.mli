(** Length-prefixed wire framing for the socket transport.

    The in-process transport moves whole strings; a byte stream does
    not, so every replication frame is wrapped before it touches a
    socket:

    {v
    +-----+-----+-----+------------+------------+----------------+
    | 'V' | 'F' | ver |  len (u32) |  crc (u32) |  payload bytes |
    +-----+-----+-----+------------+------------+----------------+
       0     1     2      3..6         7..10        11..11+len-1
    v}

    [len] and [crc] are big-endian; [crc] is the CRC-32 of the payload
    alone. The decoder is incremental — it accepts bytes in arbitrary
    chunks (partial reads, short writes, frames split mid-header) and
    yields exactly the payloads that arrive complete and verified.

    A {e truncated final frame} (connection died mid-write) is
    self-invalidating: the decoder simply never completes it, and
    {!Decoder.reset} on disconnect discards the partial bytes — the
    next connection starts a clean stream, nothing desyncs. Anything
    else malformed (bad magic, unknown version, oversized length,
    CRC mismatch) is a {e stream} error: the link must be torn down
    and re-established, because a byte stream that has lost framing
    cannot be trusted to find it again. *)

val version : int
(** Wire format version written by {!encode} (currently 1). Decoders
    reject frames from any other version — bump it when the header or
    checksum changes incompatibly. *)

val header_length : int
(** Bytes before the payload (11). *)

val max_payload : int
(** Hard cap on [len] (16 MiB). A length above this is treated as
    framing corruption, not a real frame — it bounds how much memory a
    desynced or hostile stream can make the decoder buffer. *)

val encode : string -> string
(** The framed bytes for one payload.
    @raise Invalid_argument when the payload exceeds {!max_payload}. *)

val encoded_length : string -> int
(** [header_length + String.length payload]. *)

module Decoder : sig
  type t

  val create : unit -> t

  val feed : t -> ?pos:int -> ?len:int -> string -> unit
  (** Append a chunk of received bytes ([pos]/[len] default to the
      whole string). Chunk boundaries are arbitrary. *)

  val next : t -> (string option, string) result
  (** [Ok (Some payload)] — one complete, CRC-verified frame (call
      again: a chunk may complete several frames). [Ok None] — the
      buffered bytes end mid-frame; feed more. [Error _] — the stream
      has lost framing (bad magic/version/length/CRC); the connection
      must be reset and the decoder {!reset} with it. *)

  val buffered : t -> int
  (** Bytes held for an incomplete frame. Nonzero at EOF means the
      peer died mid-write — the torn-frame signature. *)

  val reset : t -> unit
  (** Discard any partial frame; the next {!feed} starts a fresh
      stream. Call on every disconnect. *)
end
