module C = Engine.Controller
module F = Engine.Fault

let fault_of_kind = function
  | F.Drop_frame _ -> Some Transport.Drop
  | F.Dup_frame _ -> Some Transport.Duplicate
  | F.Reorder_frames _ -> Some Transport.Reorder
  | F.Truncate_frame _ -> Some Transport.Truncate
  | F.Hold_frames (_, n) -> Some (Transport.Hold n)
  | F.Link_partition (_, n) -> Some (Transport.Partition n)
  | F.Link_reset _ -> Some Transport.Reset
  | _ -> None

(* A dead primary with no live follower would spin the failure
   detector forever: resurrect the crashed followers (scratch rebuild
   from the shipped log) so promotion has a candidate, then tick until
   the detector fires. *)
let ensure_promoted g =
  if Group.live_followers g = [] then
    List.iter
      (fun id -> ignore (Group.restart_follower g id))
      (Group.follower_ids g);
  let guard = ref 0 in
  while (not (Group.primary_alive g)) && !guard < 100_000 do
    incr guard;
    Group.tick g
  done;
  if not (Group.primary_alive g) then ignore (Group.fail_over g)

let fire g (e : F.event) =
  match e.F.kind with
  | F.Drop_frame r | F.Dup_frame r | F.Reorder_frames r | F.Truncate_frame r
  | F.Hold_frames (r, _) | F.Link_partition (r, _) | F.Link_reset r -> (
      match fault_of_kind e.F.kind with
      | Some fault -> ignore (Group.inject g ~follower:r fault)
      | None -> ())
  | F.Hand_over ->
      (* Planned failover mid-run: must be invisible in the final
         state. A revoked lease (no live successor) is fine — the old
         primary keeps serving. *)
      ignore (Group.hand_over g)
  | F.Follower_crash r -> ignore (Group.crash_follower g r)
  | F.Primary_crash ->
      Group.kill_primary g;
      ensure_promoted g
  | F.Heartbeat_partition n ->
      Group.partition_heartbeats g n;
      (* Let the partition play out: the detector backs off (short) or
         promotes (long) on these idle ticks. *)
      for _ = 1 to n do
        Group.tick g
      done;
      ensure_promoted g
  | F.Budget_shock _ | F.Stream_outage _ -> (
      match F.shock_delta (C.view (Group.primary g)) e.F.kind with
      | Some shock -> ignore (Group.absorb_shock g shock)
      | None -> ())
  | F.Task_exn | F.Corrupt_log | F.Torn_snapshot ->
      (* Other layers' faults; nothing to do at the replication layer. *)
      ()

let run g ~log ~schedule =
  List.iteri
    (fun i d ->
      ignore (Group.apply g d);
      List.iter (fire g) (F.at schedule (i + 1)))
    log;
  ignore (Group.quiesce g)

let reference ?policy inst ~log ~schedule =
  let ctrl = C.create ?policy inst in
  List.iteri
    (fun i d ->
      ignore (C.apply ctrl d);
      List.iter
        (fun (e : F.event) ->
          match e.F.kind with
          | F.Budget_shock _ | F.Stream_outage _ -> (
              match F.shock_delta (C.view ctrl) e.F.kind with
              | Some shock -> ignore (C.absorb_shock ctrl shock)
              | None -> ())
          | _ -> ())
        (F.at schedule (i + 1)))
    log;
  ctrl
