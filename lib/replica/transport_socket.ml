(* A torn peer must surface as an error code on write, not a fatal
   SIGPIPE — replication heals broken links, it doesn't die with
   them. *)
let () = try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ()

type endpoint = Tcp of string * int | Unix_sock of string

let endpoint_to_string = function
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port
  | Unix_sock path -> "unix:" ^ path

let endpoint_of_string s =
  if String.length s > 5 && String.sub s 0 5 = "unix:" then
    Ok (Unix_sock (String.sub s 5 (String.length s - 5)))
  else
    match String.rindex_opt s ':' with
    | None -> Error (Printf.sprintf "bad endpoint %S (host:port or unix:path)" s)
    | Some i -> (
        let host = String.sub s 0 i in
        let port_tok = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port_tok with
        | Some port when host <> "" -> Ok (Tcp (host, port))
        | _ ->
            Error
              (Printf.sprintf "bad endpoint %S (host:port or unix:path)" s))

let inet_addr host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)

let sockaddr_of = function
  | Tcp (host, port) -> Unix.ADDR_INET (inet_addr host, port)
  | Unix_sock path -> Unix.ADDR_UNIX path

let fresh_socket ep =
  let fd =
    match ep with
    | Tcp _ -> Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0
    | Unix_sock _ -> Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  Unix.set_close_on_exec fd;
  fd

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let listen ?(backlog = 16) ep =
  let fd = fresh_socket ep in
  (match ep with
  | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
  | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ()));
  (try Unix.bind fd (sockaddr_of ep)
   with e ->
     close_quiet fd;
     raise e);
  Unix.listen fd backlog;
  fd

let bound_endpoint fd =
  match Unix.getsockname fd with
  | Unix.ADDR_INET (addr, port) -> Tcp (Unix.string_of_inet_addr addr, port)
  | Unix.ADDR_UNIX path -> Unix_sock path

let rec select_read fds timeout =
  try
    let r, _, _ = Unix.select fds [] [] timeout in
    r
  with Unix.Unix_error (Unix.EINTR, _, _) -> select_read fds timeout

let accept ?(deadline_s = 5.0) lfd =
  match select_read [ lfd ] deadline_s with
  | [] -> None
  | _ ->
      let fd, _ = Unix.accept lfd in
      Unix.set_close_on_exec fd;
      (try Unix.setsockopt fd Unix.TCP_NODELAY true
       with Unix.Unix_error _ -> ());
      Some fd

let connect ?(attempts = 40) ?(base_backoff_s = 0.01) ?(backoff_cap_s = 0.5)
    ep =
  let addr = sockaddr_of ep in
  let rec go i backoff =
    let fd = fresh_socket ep in
    match Unix.connect fd addr with
    | () ->
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        fd
    | exception Unix.Unix_error ((ECONNREFUSED | ENOENT | ECONNRESET), _, _)
      when i < attempts ->
        close_quiet fd;
        Unix.sleepf backoff;
        go (i + 1) (Float.min backoff_cap_s (backoff *. 2.))
    | exception e ->
        close_quiet fd;
        raise e
  in
  try go 1 base_backoff_s
  with Unix.Unix_error ((ECONNREFUSED | ENOENT | ECONNRESET), _, _) ->
    failwith
      (Printf.sprintf "Transport_socket.connect: %s unreachable after %d attempts"
         (endpoint_to_string ep) attempts)

let rec write_all fd s pos len =
  if len > 0 then
    match Unix.write_substring fd s pos len with
    | n -> write_all fd s (pos + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s pos len

let send_frame fd payload =
  let enc = Frame_codec.encode payload in
  write_all fd enc 0 (String.length enc)

type recv_result = Frame of string | Timeout | Closed

let recv_frame ?(deadline_s = 5.0) fd dec =
  let deadline = Unix.gettimeofday () +. deadline_s in
  let buf = Bytes.create 65536 in
  let rec go () =
    match Frame_codec.Decoder.next dec with
    | Ok (Some f) -> Frame f
    | Error _ -> Closed
    | Ok None -> (
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0. then Timeout
        else
          match select_read [ fd ] remaining with
          | [] -> Timeout
          | _ -> (
              match Unix.read fd buf 0 (Bytes.length buf) with
              | 0 -> Closed
              | n ->
                  Frame_codec.Decoder.feed dec ~len:n
                    (Bytes.unsafe_to_string buf);
                  go ()
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
              | exception
                  Unix.Unix_error ((ECONNRESET | EPIPE | EBADF), _, _) ->
                  Closed))
  in
  go ()

(* ------------------------------------------------------------------ *)
(* In-process loopback link                                            *)

let reconnects = ref 0

let m_reconnects =
  lazy (Obs.Metrics.counter "replica_socket_reconnects_total")

let note_reconnect () =
  incr reconnects;
  Obs.Metrics.inc (Lazy.force m_reconnects)

let reconnects_total () = !reconnects

type conn = {
  lfd : Unix.file_descr;
  addr : endpoint;  (** the listener's bound, dialable address *)
  dec : Frame_codec.Decoder.t;
  ready : string Queue.t;  (** decoded frames awaiting [recv] *)
  outbox : Buffer.t;  (** encoded bytes the kernel would not take yet *)
  gate : Transport.Gate.t;
  mutable wfd : Unix.file_descr;  (** dialed end: we write here *)
  mutable rfd : Unix.file_descr;  (** accepted end: we read here *)
  mutable in_flight : int;
      (** frames handed to the wire path, not yet decoded *)
  mutable closed : bool;
}

let establish c =
  let wfd = connect c.addr in
  Unix.set_nonblock wfd;
  match accept ~deadline_s:5.0 c.lfd with
  | Some rfd ->
      c.wfd <- wfd;
      c.rfd <- rfd
  | None ->
      close_quiet wfd;
      failwith "Transport_socket.loopback: accept timed out"

(* Nonblocking write of as much as the kernel will take. Blocking here
   would deadlock the loopback: the only reader is this process. *)
let write_nb c s pos len =
  match Unix.write_substring c.wfd s pos len with
  | n -> n
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> 0

let pump_out c =
  if Buffer.length c.outbox > 0 then begin
    let s = Buffer.contents c.outbox in
    let n = write_nb c s 0 (String.length s) in
    if n > 0 then begin
      Buffer.clear c.outbox;
      if n < String.length s then
        Buffer.add_substring c.outbox s n (String.length s - n)
    end
  end

let deliver_enc c enc =
  pump_out c;
  if Buffer.length c.outbox > 0 then Buffer.add_string c.outbox enc
  else begin
    let n = write_nb c enc 0 (String.length enc) in
    if n < String.length enc then
      Buffer.add_substring c.outbox enc n (String.length enc - n)
  end

(* Decode whatever the buffer holds; false means the stream lost
   framing and the connection must be torn down. *)
let pump_frames c =
  let rec go () =
    match Frame_codec.Decoder.next c.dec with
    | Ok (Some f) ->
        Queue.push f c.ready;
        c.in_flight <- max 0 (c.in_flight - 1);
        go ()
    | Ok None -> true
    | Error _ -> false
  in
  go ()

let read_avail c ~timeout =
  match select_read [ c.rfd ] timeout with
  | [] -> `Nothing
  | _ -> (
      let buf = Bytes.create 65536 in
      match Unix.read c.rfd buf 0 (Bytes.length buf) with
      | 0 -> `Eof
      | n ->
          Frame_codec.Decoder.feed c.dec ~len:n (Bytes.unsafe_to_string buf);
          `Read
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Nothing
      | exception Unix.Unix_error ((ECONNRESET | EPIPE | EBADF), _, _) ->
          `Eof)

(* Push stuck outbox bytes through by draining the receive side — the
   loopback's two ends share this process, so freeing the read buffer
   is what unblocks the write buffer. *)
let flush_outbox c =
  let guard = ref 0 in
  while Buffer.length c.outbox > 0 && !guard < 10_000 do
    incr guard;
    pump_out c;
    if Buffer.length c.outbox > 0 then begin
      ignore (read_avail c ~timeout:0.01);
      ignore (pump_frames c)
    end
  done

let write_fully c s pos len =
  let pos = ref pos and len = ref len and guard = ref 0 in
  while !len > 0 && !guard < 10_000 do
    incr guard;
    let n = write_nb c s !pos !len in
    pos := !pos + n;
    len := !len - n;
    if n = 0 then begin
      ignore (read_avail c ~timeout:0.01);
      ignore (pump_frames c)
    end
  done

let teardown c =
  close_quiet c.wfd;
  close_quiet c.rfd;
  Frame_codec.Decoder.reset c.dec;
  c.in_flight <- 0

(* Abortive reset: the triggering frame and everything in the kernel's
   buffers is lost; frames already decoded (and gate-held ones) are
   not. *)
let abortive_reset c =
  Buffer.clear c.outbox;
  teardown c;
  establish c;
  note_reconnect ()

let drain_to_eof c =
  let continue = ref true and guard = ref 0 in
  while !continue && !guard < 10_000 do
    incr guard;
    match read_avail c ~timeout:5.0 with
    | `Eof | `Nothing -> continue := false
    | `Read -> ignore (pump_frames c)
  done;
  ignore (pump_frames c)

(* Truncate-mid-frame at the byte level: half the encoded frame goes
   out, then the connection tears. The receiver decodes every complete
   predecessor, the torn frame self-invalidates with the stream
   (codec's reset-on-disconnect), and a fresh connection carries on —
   the protocol heals the gap by retransmit. *)
let truncate_wire c frame =
  flush_outbox c;
  let enc = Frame_codec.encode frame in
  write_fully c enc 0 (String.length enc / 2);
  (try Unix.shutdown c.wfd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
  drain_to_eof c;
  teardown c;
  establish c;
  note_reconnect ()

let io c : Transport.Gate.io =
  { deliver =
      (fun frame ->
        deliver_enc c (Frame_codec.encode frame);
        c.in_flight <- c.in_flight + 1);
    truncate = (fun frame -> truncate_wire c frame);
    reset = (fun () -> abortive_reset c) }

let send c frame =
  if c.closed then invalid_arg "Transport_socket: link is closed";
  Transport.Gate.send c.gate (io c) frame

let rec recv c =
  if c.closed then None
  else if not (Queue.is_empty c.ready) then Some (Queue.pop c.ready)
  else if c.in_flight > 0 || Buffer.length c.outbox > 0 then begin
    (* Frames are provably in flight: pump the wire until one decodes
       or a generous deadline passes (loopback I/O is local, so this
       only trips if something is genuinely broken). *)
    let deadline = Unix.gettimeofday () +. 5.0 in
    let result = ref None and continue = ref true in
    while !continue do
      pump_out c;
      if not (pump_frames c) then begin
        (* Lost framing mid-stream: indistinguishable from a reset. *)
        abortive_reset c;
        continue := false
      end
      else if not (Queue.is_empty c.ready) then begin
        result := Some (Queue.pop c.ready);
        continue := false
      end
      else if Unix.gettimeofday () > deadline then continue := false
      else
        match read_avail c ~timeout:0.05 with
        | `Eof ->
            ignore (pump_frames c);
            teardown c;
            establish c;
            note_reconnect ();
            if not (Queue.is_empty c.ready) then begin
              result := Some (Queue.pop c.ready);
              continue := false
            end
        | `Read | `Nothing -> ()
    done;
    !result
  end
  else if Transport.Gate.on_idle c.gate (io c) then recv c
  else None

let pending c =
  Transport.Gate.pending c.gate + c.in_flight + Queue.length c.ready

let clear c =
  Transport.Gate.clear c.gate;
  Buffer.clear c.outbox;
  Queue.clear c.ready;
  if not c.closed then begin
    teardown c;
    establish c
  end

let close c =
  if not c.closed then begin
    c.closed <- true;
    close_quiet c.wfd;
    close_quiet c.rfd;
    close_quiet c.lfd;
    match c.addr with
    | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Tcp _ -> ()
  end

let loopback ?(endpoint = Tcp ("127.0.0.1", 0)) () =
  let lfd = listen endpoint in
  let addr = bound_endpoint lfd in
  let c =
    { lfd;
      addr;
      dec = Frame_codec.Decoder.create ();
      ready = Queue.create ();
      outbox = Buffer.create 256;
      gate = Transport.Gate.create ();
      wfd = lfd;
      rfd = lfd;
      in_flight = 0;
      closed = false }
  in
  establish c;
  { Transport.send = send c;
    recv = (fun () -> recv c);
    pending = (fun () -> pending c);
    arm = Transport.Gate.arm c.gate;
    clear = (fun () -> clear c);
    stats = (fun () -> Transport.Gate.stats c.gate);
    close = (fun () -> close c) }
