(** Socket-backed replication links.

    The byte-level counterpart of the in-process queue transport:
    frames are wrapped by {!Frame_codec} and moved over a real Unix
    socket (TCP loopback or a Unix-domain path), so partial reads,
    short writes, torn frames and connection resets are exercised by
    the actual OS I/O path rather than simulated.

    Two layers:

    - {b Plumbing} ([listen]/[accept]/[connect]/[send_frame]/
      [recv_frame]) — deadline-bounded primitives shared by the
      in-process loopback link and the multi-process replica runner
      ({!Proc}). [connect] retries with capped exponential backoff, so
      a follower process can dial a primary that has not bound yet.
    - {b The {!loopback} link} — a self-contained {!Transport.link}
      whose two ends live in the calling process (its own listener,
      one dialed and one accepted connection). It routes every send
      through the shared {!Transport.Gate}, so the chaos harness arms
      the same faults on a socket link as on a queue link; [Truncate]
      writes half the {e encoded} frame and tears the connection, and
      [Reset] drops both fds abortively and reconnects — both heal
      through the codec's torn-frame invalidation plus protocol-level
      retransmit. *)

type endpoint =
  | Tcp of string * int  (** host, port; port 0 binds an ephemeral one *)
  | Unix_sock of string  (** filesystem path *)

val endpoint_to_string : endpoint -> string
(** ["host:port"] or ["unix:path"] — the CLI's wire-address syntax. *)

val endpoint_of_string : string -> (endpoint, string) result
(** Parse the CLI syntax: ["unix:<path>"], or ["<host>:<port>"]. *)

(** {1 Plumbing} *)

val listen : ?backlog:int -> endpoint -> Unix.file_descr
(** Bind and listen. A [Unix_sock] path is unlinked first; a [Tcp]
    socket gets [SO_REUSEADDR]. *)

val bound_endpoint : Unix.file_descr -> endpoint
(** The endpoint a listener actually bound — resolves a [Tcp] port 0
    to the ephemeral port the kernel picked. *)

val accept : ?deadline_s:float -> Unix.file_descr -> Unix.file_descr option
(** One connection, or [None] if nothing arrived within [deadline_s]
    (default 5s). *)

val connect :
  ?attempts:int ->
  ?base_backoff_s:float ->
  ?backoff_cap_s:float ->
  endpoint ->
  Unix.file_descr
(** Dial with capped exponential backoff between attempts (defaults:
    40 attempts, 10ms base, 500ms cap — about 15s of patience).
    @raise Failure when every attempt is refused. *)

val send_frame : Unix.file_descr -> string -> unit
(** Encode one payload and write it fully, riding out short writes. *)

type recv_result =
  | Frame of string  (** one complete, CRC-verified payload *)
  | Timeout  (** nothing decodable arrived within the deadline *)
  | Closed  (** peer closed; a partial frame in [dec] is torn *)

val recv_frame :
  ?deadline_s:float -> Unix.file_descr -> Frame_codec.Decoder.t -> recv_result
(** Next frame from the stream, feeding [dec] from the socket as
    needed (deadline default 5s). On [Closed], reset the decoder
    before reusing it on a new connection. A framing error (bad
    magic/CRC) is reported as [Closed] — the stream is unusable. *)

val close_quiet : Unix.file_descr -> unit
(** Close, ignoring errors (already-closed fds included). *)

(** {1 In-process loopback link} *)

val loopback : ?endpoint:endpoint -> unit -> Transport.link
(** A {!Transport.link} over a private socket pair (default: TCP on
    127.0.0.1 with an ephemeral port). Deterministic for the protocol
    layer: [recv] blocks only while frames are provably in flight, so
    a drain returns exactly the frames sent. [close] releases the
    three fds (and unlinks a Unix-domain path). *)

val reconnects_total : unit -> int
(** Process-wide count of loopback reconnections (resets and torn
    connections healed) — also exported as the
    [replica_socket_reconnects_total] counter. *)
