module C = Engine.Controller
module Wal = Engine.Wal
module TS = Transport_socket

(* ---------- State digest ---------- *)

let crc s = Prelude.Crc32.to_hex (Prelude.Crc32.digest s)

let digest ctrl =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "%h" (C.utility ctrl));
  let total, used, slots = Engine.Planner.float_state (C.planner ctrl) in
  Buffer.add_string buf (Printf.sprintf "|%h|" total);
  Array.iter (fun f -> Buffer.add_string buf (Printf.sprintf "%h," f)) used;
  Array.iter
    (fun (du, capped, cap_used) ->
      Buffer.add_string buf (Printf.sprintf "|%h;%h" du capped);
      Array.iter
        (fun f -> Buffer.add_string buf (Printf.sprintf ";%h" f))
        cap_used)
    slots;
  let j, l, cc, br, r, e = Engine.Counters.fields (C.counters ctrl) in
  let fa, q, rec_, fb = Engine.Counters.resilience_fields (C.counters ctrl) in
  Buffer.add_string buf
    (Printf.sprintf "|%d,%d,%d,%d,%d,%d|%d,%d,%d,%d|%d,%d" j l cc br r e fa
       q rec_ fb (C.deltas_applied ctrl) (C.since_replan ctrl));
  Printf.sprintf "%s-%s"
    (crc (Mmd.Io.assignment_to_string (C.plan ctrl)))
    (crc (Buffer.contents buf))

(* ---------- Follower process ---------- *)

type served = { fterm : int; acked : int; state_digest : string }
type serve_outcome = Quit of served | Orphaned

let serve ?(idle_timeout_s = 30.) ?(policy = C.Every 64) ~endpoint inst =
  let lfd = TS.listen endpoint in
  let ctrl = C.create ~policy inst in
  let fterm = ref 0 in
  let acked = ref 0 in
  let pending : (int, bool * Engine.Delta.t) Hashtbl.t = Hashtbl.create 64 in
  let apply_one ~shock d =
    if shock then ignore (C.absorb_shock ctrl d) else ignore (C.apply ctrl d)
  in
  let advance () =
    let rec go () =
      match Hashtbl.find_opt pending (!acked + 1) with
      | Some (shock, d) ->
          Hashtbl.remove pending (!acked + 1);
          apply_one ~shock d;
          incr acked;
          go ()
      | None -> ()
    in
    go ()
  in
  let adopt term =
    if term > !fterm then begin
      fterm := term;
      Hashtbl.reset pending
    end
  in
  let ingest ~shock ~term line =
    if term >= !fterm then begin
      adopt term;
      match Wal.record_of_string line with
      | Error _ -> () (* CRC reject; the gap heals by retransmit *)
      | Ok (seq, d) ->
          if seq > !acked && not (Hashtbl.mem pending seq) then begin
            Hashtbl.replace pending seq (shock, d);
            advance ()
          end
    end
  in
  let outcome = ref Orphaned in
  let serving = ref true in
  while !serving do
    match TS.accept ~deadline_s:idle_timeout_s lfd with
    | None -> serving := false
    | Some fd ->
        let dec = Frame_codec.Decoder.create () in
        let connected = ref true in
        while !connected do
          match TS.recv_frame ~deadline_s:idle_timeout_s fd dec with
          | TS.Timeout ->
              (* A live but silent primary past the idle timeout: treat
                 as orphaned rather than hang forever. *)
              connected := false;
              serving := false
          | TS.Closed ->
              (* Primary died (possibly mid-frame: the torn frame dies
                 with this decoder). Go back to accepting — a recovery
                 coordinator will take over. *)
              connected := false
          | TS.Frame "Q" ->
              outcome :=
                Quit
                  { fterm = !fterm;
                    acked = !acked;
                    state_digest = digest ctrl };
              connected := false;
              serving := false
          | TS.Frame "G" -> (
              try TS.send_frame fd ("X " ^ digest ctrl)
              with Unix.Unix_error _ -> connected := false)
          | TS.Frame payload -> (
              match Group.Frame.of_string payload with
              | Ok (Group.Frame.Data { term; line }) ->
                  ingest ~shock:false ~term line
              | Ok (Group.Frame.Shock { term; line }) ->
                  ingest ~shock:true ~term line
              | Ok (Group.Frame.Heartbeat { term; last_seq = _; tick = _ })
                ->
                  if term >= !fterm then begin
                    adopt term;
                    try
                      TS.send_frame fd
                        (Printf.sprintf "A %d" !acked)
                    with Unix.Unix_error _ -> connected := false
                  end
              | Ok (Group.Frame.Lease { term; last_seq = _; successor = _ })
                ->
                  adopt term
              | Error _ -> () (* not a frame we know; drop it *))
        done;
        TS.close_quiet fd
  done;
  TS.close_quiet lfd;
  (match endpoint with
  | TS.Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | TS.Tcp _ -> ());
  !outcome

(* ---------- Primary side ---------- *)

type peer = {
  pfd : Unix.file_descr;
  pdec : Frame_codec.Decoder.t;
  mutable packed : int;
}

let connect_peers endpoints =
  List.map
    (fun ep ->
      { pfd = TS.connect ep;
        pdec = Frame_codec.Decoder.create ();
        packed = 0 })
    endpoints

let peer_acked p = p.packed

let send_quiet p payload =
  try TS.send_frame p.pfd payload with Unix.Unix_error _ -> ()

let ship peers ~term ~shock line =
  let payload =
    Group.Frame.to_string
      (if shock then Group.Frame.Shock { term; line }
       else Group.Frame.Data { term; line })
  in
  List.iter (fun p -> send_quiet p payload) peers

(* Acks ride back on heartbeats; drain whatever has arrived. *)
let pump_acks ?(deadline_s = 0.25) p =
  let continue = ref true in
  while !continue do
    match TS.recv_frame ~deadline_s p.pfd p.pdec with
    | TS.Frame payload -> (
        match String.split_on_char ' ' payload with
        | [ "A"; n ] -> (
            match int_of_string_opt n with
            | Some n -> p.packed <- max p.packed n
            | None -> ())
        | _ -> ())
    | TS.Timeout | TS.Closed -> continue := false
  done

let heartbeat peers ~term ~last_seq ~tick =
  let hb =
    Group.Frame.to_string (Group.Frame.Heartbeat { term; last_seq; tick })
  in
  List.iter
    (fun p ->
      send_quiet p hb;
      pump_acks p)
    peers

let catch_up ?(max_rounds = 64) peers ~term ~history ~last_seq =
  let rounds = ref 0 in
  let behind () = List.filter (fun p -> p.packed < last_seq) peers in
  heartbeat peers ~term ~last_seq ~tick:0;
  while behind () <> [] && !rounds < max_rounds do
    incr rounds;
    List.iter
      (fun p ->
        for seq = p.packed + 1 to last_seq do
          match Hashtbl.find_opt history seq with
          | Some (shock, line) -> ship [ p ] ~term ~shock line
          | None -> ()
        done)
      (behind ());
    heartbeat peers ~term ~last_seq ~tick:!rounds
  done;
  behind () = []

let collect_digest ?(deadline_s = 5.0) p =
  send_quiet p "G";
  let deadline = Unix.gettimeofday () +. deadline_s in
  let rec go () =
    let remaining = deadline -. Unix.gettimeofday () in
    if remaining <= 0. then None
    else
      match TS.recv_frame ~deadline_s:remaining p.pfd p.pdec with
      | TS.Frame payload -> (
          match String.split_on_char ' ' payload with
          | [ "X"; d ] -> Some d
          | _ -> go () (* a late ack; keep reading *))
      | TS.Timeout | TS.Closed -> None
  in
  go ()

let quit_peers peers =
  List.iter
    (fun p ->
      send_quiet p "Q";
      TS.close_quiet p.pfd)
    peers

let write_torn_frame peers ~term ~line =
  let enc =
    Frame_codec.encode
      (Group.Frame.to_string (Group.Frame.Data { term; line }))
  in
  let half = String.length enc / 2 in
  List.iter
    (fun p ->
      try
        let rec write_all pos len =
          if len > 0 then
            match Unix.write_substring p.pfd enc pos len with
            | n -> write_all (pos + n) (len - n)
            | exception Unix.Unix_error (Unix.EINTR, _, _) ->
                write_all pos len
        in
        write_all 0 half
      with Unix.Unix_error _ -> ())
    peers

(* ---------- Recovery coordinator ---------- *)

type recovery_report = {
  survivors : int;
  divergent : int;
  wal_records : int;
  reference_digest : string;
}

let recover_and_verify ?(policy = C.Every 64) ~endpoints ~wal_path ~term inst
    =
  match Wal.recover_file wal_path with
  | Error msg -> Error ("WAL recovery failed: " ^ msg)
  | Ok r ->
      let records = r.Wal.records in
      let last_seq = List.fold_left (fun hi (s, _) -> max hi s) 0 records in
      (* Re-frame the durable records byte-identically: the WAL line is
         a pure function of (seq, delta). *)
      let history = Hashtbl.create 1024 in
      List.iter
        (fun (seq, d) ->
          Hashtbl.replace history seq (false, Wal.record_to_string ~seq d))
        records;
      let peers = connect_peers endpoints in
      let converged = catch_up peers ~term ~history ~last_seq in
      (* The reference: a fresh controller fed the same durable log. *)
      let reference = C.create ~policy inst in
      List.iter (fun (_, d) -> ignore (C.apply reference d)) records;
      let reference_digest = digest reference in
      let digests = List.map collect_digest peers in
      quit_peers peers;
      if not converged then
        Error
          (Printf.sprintf "a survivor never caught up to seq %d" last_seq)
      else
        let divergent =
          List.fold_left
            (fun n d ->
              match d with
              | Some d when d = reference_digest -> n
              | _ -> n + 1)
            0 digests
        in
        Ok
          { survivors = List.length peers;
            divergent;
            wal_records = List.length records;
            reference_digest }
