let version = 1
let header_length = 11
let max_payload = 1 lsl 24

let magic0 = 'V'
let magic1 = 'F'

let put_u32 b off v =
  Bytes.set b off (Char.chr ((v lsr 24) land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 3) (Char.chr (v land 0xff))

let get_u32 b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

let encode payload =
  let len = String.length payload in
  if len > max_payload then
    invalid_arg
      (Printf.sprintf "Frame_codec.encode: payload %d bytes exceeds cap %d"
         len max_payload);
  let b = Bytes.create (header_length + len) in
  Bytes.set b 0 magic0;
  Bytes.set b 1 magic1;
  Bytes.set b 2 (Char.chr version);
  put_u32 b 3 len;
  put_u32 b 7 (Int32.to_int (Prelude.Crc32.digest payload) land 0xffffffff);
  Bytes.blit_string payload 0 b header_length len;
  Bytes.unsafe_to_string b

let encoded_length payload = header_length + String.length payload

module Decoder = struct
  (* A flat buffer with a consumed prefix: [buf.[start .. start+len-1]]
     is the unconsumed byte window. Compaction happens when the dead
     prefix dominates, so long streams of small frames never grow the
     buffer. *)
  type t = {
    mutable buf : Bytes.t;
    mutable start : int;
    mutable len : int;
  }

  let create () = { buf = Bytes.create 4096; start = 0; len = 0 }

  let compact t =
    if t.start > 0 then begin
      Bytes.blit t.buf t.start t.buf 0 t.len;
      t.start <- 0
    end

  let ensure t extra =
    if t.start + t.len + extra > Bytes.length t.buf then begin
      compact t;
      if t.len + extra > Bytes.length t.buf then begin
        let cap = ref (Bytes.length t.buf * 2) in
        while t.len + extra > !cap do
          cap := !cap * 2
        done;
        let b = Bytes.create !cap in
        Bytes.blit t.buf 0 b 0 t.len;
        t.buf <- b
      end
    end

  let feed t ?(pos = 0) ?len s =
    let len = match len with Some l -> l | None -> String.length s - pos in
    if len < 0 || pos < 0 || pos + len > String.length s then
      invalid_arg "Frame_codec.Decoder.feed";
    ensure t len;
    Bytes.blit_string s pos t.buf (t.start + t.len) len;
    t.len <- t.len + len

  let next t =
    if t.len < header_length then Ok None
    else begin
      let at i = Bytes.get t.buf (t.start + i) in
      if at 0 <> magic0 || at 1 <> magic1 then Error "bad frame magic"
      else if Char.code (at 2) <> version then
        Error (Printf.sprintf "unsupported frame version %d" (Char.code (at 2)))
      else
        let len = get_u32 t.buf (t.start + 3) in
        if len > max_payload then
          Error (Printf.sprintf "frame length %d exceeds cap %d" len max_payload)
        else if t.len < header_length + len then Ok None
        else begin
          let crc = get_u32 t.buf (t.start + 7) in
          let payload =
            Bytes.sub_string t.buf (t.start + header_length) len
          in
          if Int32.to_int (Prelude.Crc32.digest payload) land 0xffffffff <> crc
          then Error "frame CRC mismatch"
          else begin
            t.start <- t.start + header_length + len;
            t.len <- t.len - header_length - len;
            if t.len = 0 then t.start <- 0
            else if t.start > Bytes.length t.buf / 2 then compact t;
            Ok (Some payload)
          end
        end
    end

  let buffered t = t.len

  let reset t =
    t.start <- 0;
    t.len <- 0
end
