(** Seeded replication chaos: drive an {!Engine.Fault.schedule}
    through a replica group.

    {!run} replays a churn log on the group, firing the scheduled
    faults at their delta boundaries exactly like the simulation
    driver does for single-controller faults: frame faults arm the
    target follower's transport, crashes kill replicas, a primary
    crash runs detection-then-promotion to completion (idle ticks
    until the failure detector fires), a heartbeat partition is
    ridden out for its duration, and budget/outage shocks are
    materialized against the primary's view and absorbed — which
    ships them to followers as shock frames. The run ends with a
    {!Group.quiesce}, so every live follower is fully caught up.

    The invariant all of this is tested against: whatever the
    schedule did, the surviving primary's state is bit-identical to
    {!reference} — a plain unreplicated controller fed the same log
    and the same shocks. Replication faults must be {e invisible} in
    the final state; only the fault counters may show they happened. *)

val run :
  Group.t -> log:Engine.Delta.t list -> schedule:Engine.Fault.schedule -> unit

val reference :
  ?policy:Engine.Controller.epoch_policy ->
  Mmd.Instance.t ->
  log:Engine.Delta.t list ->
  schedule:Engine.Fault.schedule ->
  Engine.Controller.t
(** The unreplicated, unkilled run every chaos outcome must match:
    same instance, same log, same shock deltas through
    [absorb_shock]; replication-layer faults ignored. *)

val fire : Group.t -> Engine.Fault.event -> unit
(** Fire one fault now (exposed for drivers that interleave their own
    delta source with faults). *)

val ensure_promoted : Group.t -> unit
(** If the primary is down, run idle ticks until the failure detector
    promotes a follower (restarting crashed followers first when none
    is live). A no-op on a healthy group. Drivers call this before
    applying a delta that may follow a primary kill. *)
