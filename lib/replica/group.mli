(** Replicated control plane: WAL shipping + heartbeat failover.

    A replica {e group} runs one primary {!Engine.Controller} and N
    follower controllers. Every delta the primary applies is framed as
    the exact WAL record it persisted (same bytes, same CRC — the tee
    point is {!Engine.Wal.append_tee}) and shipped over a per-follower
    {!Transport} link. Followers verify each record's CRC, buffer out
    of order, and apply contiguously through the ordinary
    {!Engine.Controller.apply} path — so by the determinism property
    of the engine, a follower at acked seq [s] is bit-identical to the
    primary as of record [s]: same plan, same utility, same float
    accumulators, same counters.

    Fault-injected shocks ship as distinct frames and replay through
    {!Engine.Controller.absorb_shock}, so follower fault/recovery
    counters match the primary's too.

    Time is a logical clock: one tick per applied record, plus
    explicit idle {!tick}s. Every [heartbeat_every] ticks the primary
    broadcasts a heartbeat and followers drain their links (delivery
    is batched at heartbeat boundaries, so follower lag is real and
    failover genuinely replays a tail). A follower that heard a
    heartbeat announcing records it is missing is healed by gap
    retransmit from the in-memory shipped log.

    Failure detection is heartbeat timeout + capped exponential
    backoff: [max_backoffs] consecutive missed deadlines promote the
    most-caught-up live follower (ties to the lowest id). Promotion
    drains the winner's link, finishes replaying its buffered tail
    (topping up from the durable shipped log), bumps the term, and
    resumes — the promoted primary is bit-identical to what the dead
    primary would have been at the same record, including the epoch
    phase, so subsequent replans fire at exactly the same deltas.

    Planned failover is the lease-based {!hand_over}: the primary
    drains its tail to a designated successor, fences every follower
    on the next term with a {!Frame.Lease}, and flips roles — zero
    lost records, zero replan divergence, and the demoted primary
    rejoins the follower set fully caught up (crash promotion, by
    contrast, retires the dead primary's record).

    Replica ids: the initial primary is 0, followers are 1..N. After a
    failover the promoted follower keeps its id; after a handover the
    demoted primary becomes follower [id] again (replica 0 gains a
    follower record on its first demotion). *)

module Frame : sig
  type t =
    | Data of { term : int; line : string }
        (** an ordinary record; [line] is the framed WAL record *)
    | Shock of { term : int; line : string }
        (** a fault-injected record, applied via [absorb_shock] *)
    | Heartbeat of { term : int; last_seq : int; tick : int }
    | Lease of { term : int; last_seq : int; successor : int }
        (** planned-handover fence: [successor] leads from [term] on;
            everything through [last_seq] is durable under the old
            term *)

  val to_string : t -> string
  val of_string : string -> (t, string) result
end

type config = {
  heartbeat_every : int;  (** ticks between heartbeats (default 8) *)
  heartbeat_timeout : int;
      (** ticks without contact before the first suspicion (default 24) *)
  backoff_cap : int;  (** max ticks a backoff deadline may add (128) *)
  max_backoffs : int;
      (** missed deadlines tolerated before promotion (default 3) *)
}

val default_config : config

type t

val create :
  ?policy:Engine.Controller.epoch_policy ->
  ?config:config ->
  ?labels:(string * string) list ->
  ?wal:Engine.Wal.writer ->
  ?mk_link:(int -> Transport.link) ->
  replicas:int ->
  Mmd.Instance.t ->
  t
(** A group of one primary + [replicas] followers (at least 1), all
    started from [inst]. [labels] prefix every exported instrument
    (each replica additionally gets a [replica="<id>"] label, so a
    sharded deployment passes [[("shard", i)]] and series stay
    distinct). [wal] is the primary's durable log: when given, records
    are appended (and flushed) there before shipping. [mk_link] builds
    the transport link for each replica id (default: a fresh
    in-process {!Transport.queue_link}; pass
    [fun _ -> Transport_socket.loopback ()] to replicate over real
    sockets). *)

val apply : ?flush:bool -> t -> Engine.Delta.t -> Engine.View.applied
(** Apply on the primary, persist, ship to every live follower, and
    advance one tick. [flush] (default [true]) is the per-record WAL
    OS flush; batch callers pass [false] and {!flush_wal} once.
    @raise Invalid_argument when the primary is down — {!fail_over}
    (or {!quiesce}) first. *)

val apply_batch : t -> Engine.Delta.t list -> Engine.View.applied list
(** {!apply} each delta in order with one WAL flush at batch end.
    Bit-identical to per-record applies — every record still logs,
    ships and ticks individually, so heartbeat and failover timing are
    unchanged — and the WAL bytes on disk are identical. *)

val flush_wal : t -> unit
(** Flush the attached WAL writer (no-op without one). *)

val absorb_shock : t -> Engine.Delta.t -> Engine.Controller.recovery
(** Like {!apply} for a fault-injected delta: goes through the
    primary's [absorb_shock] and ships as a {!Frame.Shock} so
    followers replay it through their own [absorb_shock]. *)

val tick : t -> unit
(** One idle tick: heartbeat if due (and not partitioned), otherwise
    run the failure detector — which, on a dead or partitioned-away
    primary, eventually promotes. *)

val quiesce : ?max_rounds:int -> t -> bool
(** Clear any partition, promote if the primary is down, then force
    heartbeat rounds until every live follower is fully caught up
    (true) or [max_rounds] (default 1024) rounds pass (false). *)

val hand_over : ?to_:int -> t -> (int, string) result
(** Planned, lease-based failover: drain the primary's tail to the
    successor ([to_], or the most-caught-up live follower, ties to the
    lowest id), fence every live follower on term+1 with a
    {!Frame.Lease}, flip roles, and rejoin the demoted primary as a
    fully caught-up follower. [Ok id] is the new primary's replica id.
    [Error _] — no eligible successor, or the successor could not
    catch up within the lease (the handover aborts and the old
    primary keeps serving; nothing is lost either way). Unlike crash
    promotion this loses zero in-flight records and retires nobody. *)

val close : t -> unit
(** Close every follower link, releasing any OS resources (socket
    fds). The group must not be used afterwards. *)

(** {1 Chaos surface} *)

val kill_primary : t -> unit
(** The primary stops cold: no more appends, ships or heartbeats.
    Detection and promotion happen in subsequent {!tick}s. The killed
    replica itself is retired — if it was a promoted follower it does
    not rejoin the follower set (its acked position went stale while
    it served); {!restart_follower} rebuilds it from scratch. *)

val fail_over : t -> bool
(** Promote now (skipping detection): false iff no live follower
    exists. Called by the failure detector; exposed for tests and for
    drivers that know the primary is gone. *)

val crash_follower : t -> int -> bool
(** Follower [id] dies, losing its link and buffers. False when [id]
    is unknown, already down, or currently the primary. *)

val restart_follower : t -> int -> bool
(** Rebuild follower [id] from scratch by replaying the durable
    shipped log — the follower-side cold recovery. False when [id] is
    unknown or alive. *)

val partition_heartbeats : t -> int -> unit
(** Suppress heartbeat delivery for the next [n] ticks. The primary
    keeps appending; a short partition rides out on detector backoff,
    a long one triggers promotion. *)

val inject : t -> follower:int -> Transport.fault -> bool
(** Arm a single-delivery fault on follower [id]'s link. *)

(** {1 Introspection} *)

val primary : t -> Engine.Controller.t
val primary_id : t -> int
val primary_alive : t -> bool
val term : t -> int
val clock : t -> int
val last_seq : t -> int
(** Highest sequence number the (current) primary has logged. *)

val replicas : t -> int
val failovers : t -> int

val handovers : t -> int
(** Completed planned handovers (granted leases that committed). *)

val last_promote_seconds : t -> float
(** Wall-clock time the most recent promotion took (drain + tail
    replay); 0 before any failover. *)

val follower_ids : t -> int list
val live_followers : t -> int list
(** Follower ids currently alive and not promoted to primary. *)

val follower_ctrl : t -> int -> Engine.Controller.t option
(** The follower's controller, for divergence checks; [None] when
    crashed or unknown (the promoted follower's controller is
    {!primary}). *)

val acked : t -> int -> int option
(** Highest contiguously applied seq on follower [id]. *)

val lag : t -> int -> int option
(** [last_seq - acked], the record lag gauge value. *)

val link : t -> int -> Transport.link option
(** Replica [id]'s transport link (for fault-stat assertions). *)
