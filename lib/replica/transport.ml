type fault =
  | Drop
  | Duplicate
  | Reorder
  | Hold of int
  | Truncate
  | Partition of int
  | Reset

type stats = {
  drops : int;
  dups : int;
  reorders : int;
  truncations : int;
  holds : int;
  partitions : int;
  resets : int;
}

let no_stats =
  { drops = 0;
    dups = 0;
    reorders = 0;
    truncations = 0;
    holds = 0;
    partitions = 0;
    resets = 0 }

let stats_total s =
  s.drops + s.dups + s.reorders + s.truncations + s.holds + s.partitions
  + s.resets

module Gate = struct
  type io = {
    deliver : string -> unit;
    truncate : string -> unit;
    reset : unit -> unit;
  }

  type t = {
    mutable armed : fault option;
    (* Frames delayed by Reorder/Hold, in hold order, each with the
       number of further sends it still waits out. *)
    mutable held : (int * string) list;
    (* An open partition: sends left before it heals, and the buffered
       frames in reverse order. *)
    mutable part : (int * string list) option;
    mutable st : stats;
  }

  let create () = { armed = None; held = []; part = None; st = no_stats }

  (* Frames reach the wire through the partition stage: an open
     partition swallows them (in order) instead. *)
  let route g io frame =
    match g.part with
    | Some (n, buf) -> g.part <- Some (n, frame :: buf)
    | None -> io.deliver frame

  let heal_partition g io =
    match g.part with
    | None -> false
    | Some (_, buf) ->
        g.part <- None;
        List.iter (route g io) (List.rev buf);
        buf <> []

  (* Every send ages the held frames; the ones that have been overtaken
     enough times get delivered (behind the current frame). *)
  let tick_held g io =
    let due, still =
      List.partition (fun (n, _) -> n - 1 <= 0) g.held
    in
    g.held <- List.map (fun (n, f) -> (n - 1, f)) still;
    List.iter (fun (_, f) -> route g io f) due

  let tick_partition g io =
    match g.part with
    | None -> ()
    | Some (n, buf) ->
        if n - 1 <= 0 then begin
          g.part <- None;
          List.iter (io.deliver) (List.rev buf)
        end
        else g.part <- Some (n - 1, buf)

  let send g io frame =
    let armed = g.armed in
    g.armed <- None;
    let entered_partition = ref false in
    (match armed with
    | None -> route g io frame
    | Some Drop -> g.st <- { g.st with drops = g.st.drops + 1 }
    | Some Duplicate ->
        g.st <- { g.st with dups = g.st.dups + 1 };
        route g io frame;
        route g io frame
    | Some Reorder ->
        g.st <- { g.st with reorders = g.st.reorders + 1 };
        (* +1 cancels this very send's tick: the countdown must age
           only on FURTHER sends. *)
        g.held <- g.held @ [ (1 + 1, frame) ]
    | Some (Hold n) ->
        g.st <- { g.st with holds = g.st.holds + 1 };
        g.held <- g.held @ [ (max 1 n + 1, frame) ]
    | Some Truncate ->
        g.st <- { g.st with truncations = g.st.truncations + 1 };
        io.truncate frame
    | Some (Partition n) ->
        g.st <- { g.st with partitions = g.st.partitions + 1 };
        entered_partition := true;
        ignore (heal_partition g io);
        g.part <- Some (max 1 n, [ frame ])
    | Some Reset ->
        g.st <- { g.st with resets = g.st.resets + 1 };
        io.reset ());
    tick_held g io;
    if not !entered_partition then tick_partition g io

  let on_idle g io =
    let healed = heal_partition g io in
    let held = g.held in
    g.held <- [];
    List.iter (fun (_, f) -> route g io f) held;
    healed || held <> []

  let pending g =
    List.length g.held
    + (match g.part with Some (_, buf) -> List.length buf | None -> 0)

  let arm g fault = g.armed <- Some fault

  let clear g =
    g.armed <- None;
    g.held <- [];
    g.part <- None

  let stats g = g.st
end

type link = {
  send : string -> unit;
  recv : unit -> string option;
  pending : unit -> int;
  arm : fault -> unit;
  clear : unit -> unit;
  stats : unit -> stats;
  close : unit -> unit;
}

let drain (l : link) =
  let rec go acc =
    match l.recv () with Some f -> go (f :: acc) | None -> List.rev acc
  in
  go []

(* ------------------------------------------------------------------ *)
(* In-process queue backend                                            *)

type t = { q : string Prelude.Chan.t; gate : Gate.t }

let io t : Gate.io =
  { deliver = Prelude.Chan.push t.q;
    (* A torn frame in-process: half the characters arrive. *)
    truncate =
      (fun frame ->
        Prelude.Chan.push t.q (String.sub frame 0 (String.length frame / 2)));
    reset = (fun () -> Prelude.Chan.clear t.q) }

let create () = { q = Prelude.Chan.create (); gate = Gate.create () }

let send t frame = Gate.send t.gate (io t) frame

let recv t =
  match Prelude.Chan.pop t.q with
  | Some _ as frame -> frame
  | None ->
      if Gate.on_idle t.gate (io t) then Prelude.Chan.pop t.q else None

let pending t = Prelude.Chan.length t.q + Gate.pending t.gate

let arm t fault = Gate.arm t.gate fault

let clear t =
  Prelude.Chan.clear t.q;
  Gate.clear t.gate

let stats t = Gate.stats t.gate

let link_of t =
  { send = send t;
    recv = (fun () -> recv t);
    pending = (fun () -> pending t);
    arm = arm t;
    clear = (fun () -> clear t);
    stats = (fun () -> stats t);
    close = (fun () -> clear t) }

let queue_link () = link_of (create ())
