type fault = Drop | Duplicate | Reorder | Truncate

type t = {
  q : string Prelude.Chan.t;
  mutable armed : fault option;
  mutable held : string option;
  mutable drops : int;
  mutable dups : int;
  mutable reorders : int;
  mutable truncations : int;
}

let create () =
  { q = Prelude.Chan.create ();
    armed = None;
    held = None;
    drops = 0;
    dups = 0;
    reorders = 0;
    truncations = 0 }

let release_held t =
  match t.held with
  | Some frame ->
      t.held <- None;
      Prelude.Chan.push t.q frame
  | None -> ()

(* A held (reordered) frame follows the frame that overtakes it. *)
let enqueue t frame =
  Prelude.Chan.push t.q frame;
  release_held t

let send t frame =
  match t.armed with
  | None -> enqueue t frame
  | Some fault -> (
      t.armed <- None;
      match fault with
      | Drop ->
          t.drops <- t.drops + 1;
          release_held t
      | Duplicate ->
          t.dups <- t.dups + 1;
          enqueue t frame;
          Prelude.Chan.push t.q frame
      | Reorder ->
          t.reorders <- t.reorders + 1;
          release_held t;
          t.held <- Some frame
      | Truncate ->
          t.truncations <- t.truncations + 1;
          enqueue t (String.sub frame 0 (String.length frame / 2)))

let recv t =
  match Prelude.Chan.pop t.q with
  | Some _ as frame -> frame
  | None -> (
      (* Queue empty: a held frame can no longer be overtaken. *)
      match t.held with
      | Some frame ->
          t.held <- None;
          Some frame
      | None -> None)

let drain t =
  let rec go acc =
    match recv t with Some f -> go (f :: acc) | None -> List.rev acc
  in
  go []

let pending t =
  Prelude.Chan.length t.q + (match t.held with Some _ -> 1 | None -> 0)

let arm t fault = t.armed <- Some fault

let clear t =
  Prelude.Chan.clear t.q;
  t.held <- None;
  t.armed <- None

let stats t = (t.drops, t.dups, t.reorders, t.truncations)
