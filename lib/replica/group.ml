module C = Engine.Controller
module Wal = Engine.Wal

(* ---------- Frame codec ---------- *)

module Frame = struct
  type t =
    | Data of { term : int; line : string }
    | Shock of { term : int; line : string }
    | Heartbeat of { term : int; last_seq : int; tick : int }
    | Lease of { term : int; last_seq : int; successor : int }

  let to_string = function
    | Data { term; line } -> Printf.sprintf "D %d %s" term line
    | Shock { term; line } -> Printf.sprintf "S %d %s" term line
    | Heartbeat { term; last_seq; tick } ->
        Printf.sprintf "H %d %d %d" term last_seq tick
    | Lease { term; last_seq; successor } ->
        Printf.sprintf "L %d %d %d" term last_seq successor

  (* "<tag> <int> <rest>"; [rest] may itself contain spaces. *)
  let split3 s =
    match String.index_opt s ' ' with
    | None -> None
    | Some i -> (
        let tag = String.sub s 0 i in
        let rest = String.sub s (i + 1) (String.length s - i - 1) in
        match String.index_opt rest ' ' with
        | None -> Some (tag, rest, "")
        | Some j ->
            Some
              ( tag,
                String.sub rest 0 j,
                String.sub rest (j + 1) (String.length rest - j - 1) ))

  let two_ints rest =
    match
      String.split_on_char ' ' rest |> List.filter (fun t -> t <> "")
    with
    | [ a; b ] -> (
        match (int_of_string_opt a, int_of_string_opt b) with
        | Some a, Some b -> Some (a, b)
        | _ -> None)
    | _ -> None

  let of_string s =
    match split3 s with
    | None -> Error "not a replication frame"
    | Some (tag, term_tok, rest) -> (
        match int_of_string_opt term_tok with
        | None -> Error (Printf.sprintf "bad term %S" term_tok)
        | Some term -> (
            match tag with
            | "D" when rest <> "" -> Ok (Data { term; line = rest })
            | "S" when rest <> "" -> Ok (Shock { term; line = rest })
            | "H" -> (
                match two_ints rest with
                | Some (last_seq, tick) ->
                    Ok (Heartbeat { term; last_seq; tick })
                | None -> Error "bad heartbeat frame")
            | "L" -> (
                match two_ints rest with
                | Some (last_seq, successor) ->
                    Ok (Lease { term; last_seq; successor })
                | None -> Error "bad lease frame")
            | _ -> Error (Printf.sprintf "unknown frame tag %S" tag)))
end

(* ---------- Followers ---------- *)

type follower = {
  id : int;
  mutable ctrl : C.t;
  tr : Transport.link;
  mutable acked : int;  (** highest contiguously applied seq *)
  mutable fterm : int;  (** highest term seen *)
  pending : (int, bool * Engine.Delta.t) Hashtbl.t;
      (** verified records buffered out of order: seq -> (shock, delta) *)
  mutable hb_last_seq : int;  (** primary's announced last seq *)
  mutable alive : bool;
  mutable last_progress : float;  (** wall clock of the last acked advance *)
  m_lag_records : Obs.Metrics.gauge;
  m_lag_seconds : Obs.Metrics.gauge;
}

type config = {
  heartbeat_every : int;
  heartbeat_timeout : int;
  backoff_cap : int;
  max_backoffs : int;
}

let default_config =
  { heartbeat_every = 8; heartbeat_timeout = 24; backoff_cap = 128;
    max_backoffs = 3 }

type t = {
  inst : Mmd.Instance.t;
  policy : C.epoch_policy;
  labels : (string * string) list;
  cfg : config;
  mk_link : int -> Transport.link;
  mutable primary : C.t;
  mutable primary_id : int;
  mutable primary_alive : bool;
  mutable term : int;
  mutable next_seq : int;
  mutable clock : int;  (** logical ticks: one per applied record *)
  followers : follower array;  (** ids 1..N at indices 0..N-1 *)
  mutable zero : follower option;
      (** replica 0's follower record, created the first time the
          initial primary is demoted by a planned handover *)
  history : (int, bool * string) Hashtbl.t;
      (** the durable shipped log: seq -> (shock, framed WAL line) *)
  mutable history_hi : int;
  wal : Wal.writer option;
  mutable partitioned_until : int;
  mutable suspicion : int;
  mutable deadline : int;  (** tick at which the failure detector fires *)
  mutable failovers_n : int;
  mutable handovers_n : int;
  mutable last_promote : float;
  m_failovers : Obs.Metrics.counter;
  m_promote : Obs.Hist.t;
  m_shipped : Obs.Metrics.counter;
  m_rejected : Obs.Metrics.counter;
  m_dups : Obs.Metrics.counter;
  m_retransmits : Obs.Metrics.counter;
  m_handovers : Obs.Metrics.counter;
  m_lease_grants : Obs.Metrics.counter;
  m_partitions : Obs.Metrics.counter;
}

let replica_labels labels id = labels @ [ ("replica", string_of_int id) ]

let mk_follower ~labels ~mk_link ~ctrl id =
  { id;
    ctrl;
    tr = mk_link id;
    acked = 0;
    fterm = 0;
    pending = Hashtbl.create 16;
    hb_last_seq = 0;
    alive = true;
    last_progress = Obs.Clock.now ();
    m_lag_records =
      Obs.Metrics.gauge
        ~labels:(replica_labels labels id)
        "replica_follower_lag_records";
    m_lag_seconds =
      Obs.Metrics.gauge
        ~labels:(replica_labels labels id)
        "replica_follower_lag_seconds" }

let create ?(policy = C.Every 64) ?(config = default_config) ?(labels = [])
    ?wal ?(mk_link = fun _ -> Transport.queue_link ()) ~replicas inst =
  if replicas < 1 then invalid_arg "Replica.Group.create: need at least 1 follower";
  if config.heartbeat_every < 1 || config.heartbeat_timeout < config.heartbeat_every
  then invalid_arg "Replica.Group.create: heartbeat_timeout < heartbeat_every";
  let mk_ctrl id = C.create ~policy ~labels:(replica_labels labels id) inst in
  { inst;
    policy;
    labels;
    cfg = config;
    mk_link;
    primary = mk_ctrl 0;
    primary_id = 0;
    primary_alive = true;
    term = 0;
    next_seq = 1;
    clock = 0;
    followers =
      Array.init replicas (fun i ->
          let id = i + 1 in
          mk_follower ~labels ~mk_link ~ctrl:(mk_ctrl id) id);
    zero = None;
    history = Hashtbl.create 1024;
    history_hi = 0;
    wal;
    partitioned_until = 0;
    suspicion = 0;
    deadline = config.heartbeat_timeout;
    failovers_n = 0;
    handovers_n = 0;
    last_promote = 0.;
    m_failovers = Obs.Metrics.counter ~labels "replica_failovers_total";
    m_promote =
      Obs.Metrics.histogram ~labels "replica_time_to_promote_seconds";
    m_shipped = Obs.Metrics.counter ~labels "replica_frames_shipped_total";
    m_rejected = Obs.Metrics.counter ~labels "replica_frames_rejected_total";
    m_dups = Obs.Metrics.counter ~labels "replica_frames_duplicate_total";
    m_retransmits = Obs.Metrics.counter ~labels "replica_retransmits_total";
    m_handovers = Obs.Metrics.counter ~labels "replica_handovers_total";
    m_lease_grants = Obs.Metrics.counter ~labels "replica_lease_grants_total";
    m_partitions = Obs.Metrics.counter ~labels "replica_partitions_total" }

let all_followers g =
  match g.zero with
  | Some z -> z :: Array.to_list g.followers
  | None -> Array.to_list g.followers

let live_followers_list g =
  all_followers g |> List.filter (fun f -> f.alive && f.id <> g.primary_id)

let find_follower g id =
  if id = 0 then g.zero
  else if id < 1 || id > Array.length g.followers then None
  else Some g.followers.(id - 1)

(* ---------- Follower ingest ---------- *)

let follower_apply f ~shock d =
  if shock then ignore (C.absorb_shock f.ctrl d) else ignore (C.apply f.ctrl d)

let advance_contiguous f =
  let progressed = ref false in
  let rec go () =
    match Hashtbl.find_opt f.pending (f.acked + 1) with
    | Some (shock, d) ->
        Hashtbl.remove f.pending (f.acked + 1);
        follower_apply f ~shock d;
        f.acked <- f.acked + 1;
        progressed := true;
        go ()
    | None -> ()
  in
  go ();
  if !progressed then f.last_progress <- Obs.Clock.now ()

let adopt_term f term =
  if term > f.fterm then begin
    f.fterm <- term;
    (* Buffered records from an older term may straddle the promoted
       primary's durable prefix; drop them and let the gap retransmit
       re-ship the authoritative versions. *)
    Hashtbl.reset f.pending
  end

let ingest g f ~shock ~term line =
  if term < f.fterm then Obs.Metrics.inc g.m_rejected
  else begin
    adopt_term f term;
    match Wal.record_of_string line with
    | Error _ ->
        (* CRC mismatch / truncated frame: drop it, the gap heals via
           retransmit at the next heartbeat. *)
        Obs.Metrics.inc g.m_rejected
    | Ok (seq, d) ->
        if seq <= f.acked || Hashtbl.mem f.pending seq then
          Obs.Metrics.inc g.m_dups
        else begin
          Hashtbl.replace f.pending seq (shock, d);
          advance_contiguous f
        end
  end

let follower_recv g f frame =
  match Frame.of_string frame with
  | Error _ -> Obs.Metrics.inc g.m_rejected
  | Ok (Frame.Data { term; line }) -> ingest g f ~shock:false ~term line
  | Ok (Frame.Shock { term; line }) -> ingest g f ~shock:true ~term line
  | Ok (Frame.Heartbeat { term; last_seq; tick = _ }) ->
      if term >= f.fterm then begin
        adopt_term f term;
        f.hb_last_seq <- max f.hb_last_seq last_seq
      end
      else Obs.Metrics.inc g.m_rejected
  | Ok (Frame.Lease { term; last_seq; successor = _ }) ->
      (* The lease is the term-fence for a planned handover: adopting
         its term makes every follower reject stale frames from the
         demoted primary, exactly like a crash promotion's first
         heartbeat. *)
      if term >= f.fterm then begin
        adopt_term f term;
        f.hb_last_seq <- max f.hb_last_seq last_seq
      end
      else Obs.Metrics.inc g.m_rejected

let drain_follower g f = List.iter (follower_recv g f) (Transport.drain f.tr)

(* ---------- Heartbeats, retransmit, failure detection ---------- *)

let send_record g f ~shock line =
  f.tr.Transport.send
    (Frame.to_string
       (if shock then Frame.Shock { term = g.term; line }
        else Frame.Data { term = g.term; line }))

let retransmit g f =
  for seq = f.acked + 1 to g.history_hi do
    if not (Hashtbl.mem f.pending seq) then
      match Hashtbl.find_opt g.history seq with
      | Some (shock, line) ->
          Obs.Metrics.inc g.m_retransmits;
          send_record g f ~shock line
      | None -> ()
  done

let update_lag_gauges g =
  List.iter
    (fun f ->
      let lag = g.next_seq - 1 - f.acked in
      Obs.Metrics.set f.m_lag_records (float lag);
      Obs.Metrics.set f.m_lag_seconds
        (if lag = 0 then 0. else Obs.Clock.now () -. f.last_progress))
    (live_followers_list g)

let heartbeat_step g =
  let last_seq = g.next_seq - 1 in
  let live = live_followers_list g in
  let hb =
    Frame.to_string
      (Frame.Heartbeat { term = g.term; last_seq; tick = g.clock })
  in
  List.iter (fun f -> f.tr.Transport.send hb) live;
  List.iter (fun f -> drain_follower g f) live;
  List.iter (fun f -> if f.acked < last_seq then retransmit g f) live;
  update_lag_gauges g;
  g.suspicion <- 0;
  g.deadline <- g.clock + g.cfg.heartbeat_timeout

(* A deposed primary must never rejoin the follower set: its follower
   record's [acked] went stale while it served as primary (the shared
   controller advanced without it), so resurrecting it would replay
   already-applied records. Mark the record dead; only
   [restart_follower]'s scratch rebuild brings the replica back. *)
let retire_primary_record g =
  match find_follower g g.primary_id with
  | Some f ->
      f.alive <- false;
      f.tr.Transport.clear ();
      Hashtbl.reset f.pending
  | None -> ()

let fail_over g =
  let t0 = Obs.Clock.now () in
  retire_primary_record g;
  g.primary_alive <- false;
  let candidates = live_followers_list g in
  (* First drain the in-flight tail every candidate already holds. *)
  List.iter (fun f -> drain_follower g f) candidates;
  match candidates with
  | [] -> false
  | first :: rest ->
      (* Deterministic winner: most caught-up, ties to the lowest id. *)
      let winner =
        List.fold_left
          (fun best f -> if f.acked > best.acked then f else best)
          first rest
      in
      (* Finish the tail from the durable shipped log: everything the
         old primary logged that the winner has not applied yet. *)
      for seq = winner.acked + 1 to g.history_hi do
        (match Hashtbl.find_opt winner.pending seq with
        | Some (shock, d) -> follower_apply winner ~shock d
        | None -> (
            match Hashtbl.find_opt g.history seq with
            | Some (shock, line) -> (
                match Wal.record_of_string line with
                | Ok (_, d) -> follower_apply winner ~shock d
                | Error _ -> ())
            | None -> ()));
        winner.acked <- seq
      done;
      Hashtbl.reset winner.pending;
      winner.last_progress <- Obs.Clock.now ();
      Obs.Metrics.set winner.m_lag_records 0.;
      Obs.Metrics.set winner.m_lag_seconds 0.;
      g.term <- g.term + 1;
      g.primary <- winner.ctrl;
      g.primary_id <- winner.id;
      g.primary_alive <- true;
      g.suspicion <- 0;
      g.deadline <- g.clock + g.cfg.heartbeat_timeout;
      g.failovers_n <- g.failovers_n + 1;
      let dt = Obs.Clock.elapsed_since t0 in
      g.last_promote <- dt;
      Obs.Metrics.inc g.m_failovers;
      Obs.Hist.observe g.m_promote dt;
      (* Announce the new term at once so the remaining followers
         discard stale buffered state and re-sync from history. *)
      heartbeat_step g;
      true

let tick g =
  g.clock <- g.clock + 1;
  let due = g.clock mod g.cfg.heartbeat_every = 0 in
  let partitioned = g.clock < g.partitioned_until in
  if g.primary_alive && due && not partitioned then heartbeat_step g
  else if g.clock >= g.deadline then
    if g.suspicion >= g.cfg.max_backoffs then ignore (fail_over g)
    else begin
      (* Capped exponential backoff before declaring the primary dead:
         a short heartbeat gap (slow primary, brief partition) rides
         out; a persistent one escalates to promotion. *)
      g.suspicion <- g.suspicion + 1;
      g.deadline <-
        g.clock
        + min g.cfg.backoff_cap (g.cfg.heartbeat_timeout * (1 lsl g.suspicion))
    end

(* ---------- Primary operations ---------- *)

let log_record ?flush g d =
  match g.wal with
  | Some w ->
      let seq, line = Wal.append_tee ?flush w d in
      g.next_seq <- seq + 1;
      (seq, line)
  | None ->
      let seq = g.next_seq in
      g.next_seq <- seq + 1;
      (seq, Wal.record_to_string ~seq d)

let ship g ~shock seq line =
  Hashtbl.replace g.history seq (shock, line);
  if seq > g.history_hi then g.history_hi <- seq;
  Obs.Metrics.inc g.m_shipped;
  List.iter (fun f -> send_record g f ~shock line) (live_followers_list g)

let apply ?flush g d =
  if not g.primary_alive then
    invalid_arg "Replica.Group.apply: primary is down (fail_over first)";
  let applied = C.apply g.primary d in
  let seq, line = log_record ?flush g d in
  ship g ~shock:false seq line;
  tick g;
  applied

let flush_wal g = match g.wal with Some w -> Wal.flush_writer w | None -> ()

(* The batched apply keeps the per-record state machine — apply, log,
   ship, tick, in that order for every delta, so heartbeats, failure
   detection and failover fire at the same logical ticks as the
   one-at-a-time path — and amortizes only the WAL's OS flush over the
   batch. Bytes on disk are identical. *)
let apply_batch g deltas =
  let results = List.map (fun d -> apply ~flush:false g d) deltas in
  flush_wal g;
  results

let absorb_shock g d =
  if not g.primary_alive then
    invalid_arg "Replica.Group.absorb_shock: primary is down (fail_over first)";
  let recovery = C.absorb_shock g.primary d in
  let seq, line = log_record g d in
  ship g ~shock:true seq line;
  tick g;
  recovery

(* ---------- Planned handover (lease) ---------- *)

(* The demoted primary rejoins the follower set as a fully caught-up
   follower: its controller applied every record while it served, so
   its acked position is exactly [last_seq] at the new term. Replica 0
   gets its follower record (link, gauges) built on first demotion. *)
let demote_primary_record g ~new_term ~last_seq =
  let f =
    match find_follower g g.primary_id with
    | Some f -> f
    | None ->
        let f =
          mk_follower ~labels:g.labels ~mk_link:g.mk_link ~ctrl:g.primary
            g.primary_id
        in
        g.zero <- Some f;
        f
  in
  f.ctrl <- g.primary;
  f.acked <- last_seq;
  f.fterm <- new_term;
  Hashtbl.reset f.pending;
  f.hb_last_seq <- last_seq;
  f.tr.Transport.clear ();
  f.alive <- true;
  f.last_progress <- Obs.Clock.now ();
  Obs.Metrics.set f.m_lag_records 0.;
  Obs.Metrics.set f.m_lag_seconds 0.

let hand_over ?to_ g =
  if not g.primary_alive then Error "primary is down: crash promotion only"
  else begin
    Obs.Metrics.inc g.m_lease_grants;
    let last_seq = g.next_seq - 1 in
    let successor =
      match to_ with
      | Some id -> (
          match find_follower g id with
          | Some f when f.alive && f.id <> g.primary_id -> Ok f
          | _ ->
              Error
                (Printf.sprintf
                   "designated successor %d is not a live follower" id))
      | None -> (
          match live_followers_list g with
          | [] -> Error "no live follower to hand over to"
          | first :: rest ->
              Ok
                (List.fold_left
                   (fun best f -> if f.acked > best.acked then f else best)
                   first rest))
    in
    match successor with
    | Error _ as e -> e
    | Ok s ->
        (* Drain the tail to the successor under the lease; bounded
           rounds so a wedged link revokes the lease (primary keeps
           serving) instead of stalling the control plane. *)
        let rounds = ref 0 in
        drain_follower g s;
        while s.acked < last_seq && !rounds < 64 do
          incr rounds;
          retransmit g s;
          drain_follower g s
        done;
        if s.acked < last_seq then
          Error
            (Printf.sprintf
               "lease revoked: successor %d stuck at %d/%d" s.id s.acked
               last_seq)
        else begin
          let new_term = g.term + 1 in
          let lease =
            Frame.to_string
              (Frame.Lease { term = new_term; last_seq; successor = s.id })
          in
          (* Fence every live follower on the new term before the flip
             so nothing accepts a stale frame from the old leader. *)
          let live = live_followers_list g in
          List.iter (fun f -> f.tr.Transport.send lease) live;
          List.iter (fun f -> drain_follower g f) live;
          demote_primary_record g ~new_term ~last_seq;
          g.term <- new_term;
          g.primary <- s.ctrl;
          g.primary_id <- s.id;
          g.primary_alive <- true;
          g.suspicion <- 0;
          g.deadline <- g.clock + g.cfg.heartbeat_timeout;
          g.handovers_n <- g.handovers_n + 1;
          Obs.Metrics.inc g.m_handovers;
          heartbeat_step g;
          Ok s.id
        end
  end

(* ---------- Chaos operations ---------- *)

let kill_primary g =
  g.primary_alive <- false;
  retire_primary_record g

let crash_follower g id =
  match find_follower g id with
  | Some f when f.alive && f.id <> g.primary_id ->
      f.alive <- false;
      f.tr.Transport.clear ();
      Hashtbl.reset f.pending;
      true
  | _ -> false

let restart_follower g id =
  match find_follower g id with
  | Some f when not f.alive ->
      f.ctrl <-
        C.create ~policy:g.policy ~labels:(replica_labels g.labels f.id) g.inst;
      f.acked <- 0;
      f.fterm <- g.term;
      f.hb_last_seq <- 0;
      Hashtbl.reset f.pending;
      f.tr.Transport.clear ();
      (* Scratch rebuild: replay the durable shipped log from the
         beginning — the follower-side equivalent of a cold WAL
         recovery. *)
      for seq = 1 to g.history_hi do
        match Hashtbl.find_opt g.history seq with
        | Some (shock, line) -> (
            match Wal.record_of_string line with
            | Ok (_, d) ->
                follower_apply f ~shock d;
                f.acked <- seq
            | Error _ -> ())
        | None -> ()
      done;
      f.last_progress <- Obs.Clock.now ();
      f.alive <- true;
      true
  | _ -> false

let partition_heartbeats g ticks =
  if ticks > 0 then Obs.Metrics.inc g.m_partitions;
  g.partitioned_until <- g.clock + max 0 ticks

let inject g ~follower fault =
  match find_follower g follower with
  | Some f when f.alive && f.id <> g.primary_id ->
      f.tr.Transport.arm fault;
      true
  | _ -> false

let quiesce ?(max_rounds = 1024) g =
  g.partitioned_until <- 0;
  if not g.primary_alive then ignore (fail_over g);
  let caught_up () =
    List.for_all
      (fun f -> f.acked = g.next_seq - 1)
      (live_followers_list g)
  in
  let rounds = ref 0 in
  while not (caught_up ()) && !rounds < max_rounds do
    incr rounds;
    g.clock <- g.clock + 1;
    heartbeat_step g
  done;
  caught_up ()

let close g = List.iter (fun f -> f.tr.Transport.close ()) (all_followers g)

(* ---------- Accessors ---------- *)

let primary g = g.primary
let primary_id g = g.primary_id
let primary_alive g = g.primary_alive
let term g = g.term
let clock g = g.clock
let last_seq g = g.next_seq - 1
let replicas g = Array.length g.followers
let failovers g = g.failovers_n
let handovers g = g.handovers_n
let last_promote_seconds g = g.last_promote

let follower_ids g = all_followers g |> List.map (fun f -> f.id)

let live_followers g = live_followers_list g |> List.map (fun f -> f.id)

let follower_ctrl g id =
  match find_follower g id with
  | Some f when f.alive -> Some f.ctrl
  | _ -> None

let acked g id =
  match find_follower g id with Some f -> Some f.acked | None -> None

let lag g id =
  match find_follower g id with
  | Some f -> Some (g.next_seq - 1 - f.acked)
  | None -> None

let link g id =
  match find_follower g id with Some f -> Some f.tr | None -> None
