(** Multi-process replica sets.

    Each follower is its own OS process: it listens on a socket,
    ingests {!Frame_codec}-framed {!Group.Frame} payloads from the
    primary, and applies the shipped WAL records through the ordinary
    {!Engine.Controller.apply} path — the same state machine as the
    in-process group, with the process boundary and the real network
    in between. A [kill -9] of the primary (including mid-frame) is
    survivable by construction: the primary appends + flushes each
    record to its WAL {e before} shipping, so a coordinator can
    recover the durable log, re-ship the tail to every survivor at a
    higher term, and verify bit-identical convergence via state
    digests.

    Wire payloads are the {!Group.Frame} strings plus four control
    payloads: ["A <acked>"] (follower acks its contiguous prefix on
    every heartbeat), ["G"] / ["X <digest>"] (digest request/reply)
    and ["Q"] (quit). *)

val digest : Engine.Controller.t -> string
(** A compact, space-free digest of the full bit-identity surface:
    plan bytes, utility bits, planner float accumulators, counter
    fields, lifetime delta count and epoch phase. Two controllers
    digest equal iff the replication invariant holds between them. *)

(** {1 Follower process} *)

type served = {
  fterm : int;  (** highest term the follower adopted *)
  acked : int;  (** contiguous prefix applied *)
  state_digest : string;
}

type serve_outcome =
  | Quit of served  (** a primary said ["Q"] — clean shutdown *)
  | Orphaned  (** no primary (re)connected or spoke within the idle
                  timeout — the supervisor lost us *)

val serve :
  ?idle_timeout_s:float ->
  ?policy:Engine.Controller.epoch_policy ->
  endpoint:Transport_socket.endpoint ->
  Mmd.Instance.t ->
  serve_outcome
(** Run the follower loop: accept a connection, ingest frames
    (term-fenced, CRC-checked, buffered out of order, applied
    contiguously), ack on heartbeats, and — when the connection drops
    (primary crashed) — go back to accepting, so a recovery
    coordinator or successor primary can take over. [idle_timeout_s]
    (default 30) bounds how long the process lingers with no primary
    talking to it. *)

(** {1 Primary side} *)

type peer
(** One connected follower, from the primary's point of view. *)

val connect_peers : Transport_socket.endpoint list -> peer list
(** Dial every follower (with {!Transport_socket.connect}'s backoff,
    so followers may still be starting). *)

val peer_acked : peer -> int

val ship : peer list -> term:int -> shock:bool -> string -> unit
(** Send one framed WAL record to every peer (write errors are
    swallowed — a dead peer is the chaos being tested). *)

val heartbeat : peer list -> term:int -> last_seq:int -> tick:int -> unit
(** Send a heartbeat and pump any pending acks. *)

val catch_up :
  ?max_rounds:int ->
  peer list ->
  term:int ->
  history:(int, bool * string) Hashtbl.t ->
  last_seq:int ->
  bool
(** Heartbeat/retransmit rounds until every peer acks [last_seq]
    (true) or [max_rounds] (default 64) rounds pass (false). *)

val collect_digest : ?deadline_s:float -> peer -> string option
(** ["G"] → ["X <digest>"]. *)

val quit_peers : peer list -> unit
(** Send ["Q"] and close the connections. *)

val write_torn_frame : peer list -> term:int -> line:string -> unit
(** Write exactly the first half of one encoded Data frame to every
    peer — the mid-frame kill: the caller SIGKILLs itself right after,
    leaving a torn frame on every wire. *)

(** {1 Recovery coordinator} *)

type recovery_report = {
  survivors : int;
  divergent : int;  (** survivors whose digest differs from the WAL replay *)
  wal_records : int;
  reference_digest : string;
}

val recover_and_verify :
  ?policy:Engine.Controller.epoch_policy ->
  endpoints:Transport_socket.endpoint list ->
  wal_path:string ->
  term:int ->
  Mmd.Instance.t ->
  (recovery_report, string) result
(** After the primary died: recover the durable WAL, connect to every
    surviving follower at [term] (strictly above the dead primary's),
    re-ship the tail each one is missing, replay the same records
    through a fresh in-process controller for the reference digest,
    collect each survivor's digest, and send ["Q"]. [Error _] when the
    WAL is unreadable or a survivor never catches up. *)
