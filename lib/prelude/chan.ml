type 'a t = { lock : Mutex.t; q : 'a Queue.t }

let create () = { lock = Mutex.create (); q = Queue.create () }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let push t x = locked t (fun () -> Queue.push x t.q)
let pop t = locked t (fun () -> Queue.take_opt t.q)
let peek t = locked t (fun () -> Queue.peek_opt t.q)
let length t = locked t (fun () -> Queue.length t.q)
let is_empty t = locked t (fun () -> Queue.is_empty t.q)
let clear t = locked t (fun () -> Queue.clear t.q)
