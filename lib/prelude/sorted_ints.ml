(* Sorted dynamic int vector. Insert/remove shift the tail with
   Array.blit (memmove); the sets the engine keeps here are small
   relative to the slot universe, so the shifts stay cheap while
   iteration — the hot operation — touches exactly the members, in
   ascending order. *)

type t = { mutable data : int array; mutable len : int }

let create () = { data = [||]; len = 0 }

let of_sorted_array a =
  let n = Array.length a in
  for i = 1 to n - 1 do
    if a.(i - 1) >= a.(i) then
      invalid_arg "Sorted_ints.of_sorted_array: not strictly ascending"
  done;
  { data = Array.copy a; len = n }

let length t = t.len
let is_empty t = t.len = 0

(* Position of the first element >= x (insertion point). *)
let lower_bound t x =
  let lo = ref 0 and hi = ref t.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.data.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

let index t x =
  let i = lower_bound t x in
  if i < t.len && t.data.(i) = x then i else -1

let mem t x = index t x >= 0

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Sorted_ints.get: out of range";
  t.data.(i)

let ensure_capacity t =
  if t.len = Array.length t.data then begin
    let cap = max 4 (2 * t.len) in
    let data = Array.make cap 0 in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let add t x =
  let i = lower_bound t x in
  if i < t.len && t.data.(i) = x then false
  else begin
    ensure_capacity t;
    Array.blit t.data i t.data (i + 1) (t.len - i);
    t.data.(i) <- x;
    t.len <- t.len + 1;
    true
  end

let remove t x =
  let i = lower_bound t x in
  if i >= t.len || t.data.(i) <> x then false
  else begin
    Array.blit t.data (i + 1) t.data i (t.len - i - 1);
    t.len <- t.len - 1;
    true
  end

let clear t = t.len <- 0

let iter t f =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_list t =
  let acc = ref [] in
  for i = t.len - 1 downto 0 do
    acc := t.data.(i) :: !acc
  done;
  !acc

let copy t = { data = Array.sub t.data 0 t.len; len = t.len }

let equal a b =
  a.len = b.len
  &&
  let rec eq i = i = a.len || (a.data.(i) = b.data.(i) && eq (i + 1)) in
  eq 0
