let max_domains = 64

let env_default =
  lazy
    (match Sys.getenv_opt "VDMC_DOMAINS" with
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n >= 1 -> Some (min n max_domains)
        | _ -> None)
    | None -> None)

let override = ref None

let num_domains () =
  match !override with
  | Some n -> n
  | None -> (
      match Lazy.force env_default with
      | Some n -> n
      | None -> max 1 (Domain.recommended_domain_count () - 1))

let set_num_domains n =
  override := Option.map (fun n -> max 1 (min max_domains n)) n

(* True while the current domain is executing a pool task; nested
   parallel calls then run inline, which both avoids deadlock (the
   outer region blocks the queue) and keeps composition deterministic. *)
let busy_key = Domain.DLS.new_key (fun () -> ref false)
let busy () = !(Domain.DLS.get busy_key)

(* A region is one batch of tasks sharing an index cursor. Workers and
   the submitting domain all pull from [next]; the task that brings
   [pending] to zero clears the region slot and wakes the submitter. *)
type region = {
  tasks : (unit -> unit) array;
  next : int Atomic.t;
  pending : int Atomic.t;
}

type pool = {
  mutex : Mutex.t;
  work : Condition.t;  (* workers wait here for a region *)
  finished : Condition.t;  (* submitters wait here for completion *)
  mutable region : region option;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let drain p r =
  let n = Array.length r.tasks in
  let rec go () =
    let i = Atomic.fetch_and_add r.next 1 in
    if i < n then begin
      r.tasks.(i) ();
      if Atomic.fetch_and_add r.pending (-1) = 1 then begin
        Mutex.lock p.mutex;
        (match p.region with
        | Some r' when r' == r -> p.region <- None
        | _ -> ());
        Condition.broadcast p.finished;
        Mutex.unlock p.mutex
      end;
      go ()
    end
  in
  go ()

let worker_loop p =
  Mutex.lock p.mutex;
  let rec loop () =
    if p.stop then Mutex.unlock p.mutex
    else
      match p.region with
      | Some r when Atomic.get r.next < Array.length r.tasks ->
          Mutex.unlock p.mutex;
          drain p r;
          Mutex.lock p.mutex;
          loop ()
      | _ ->
          Condition.wait p.work p.mutex;
          loop ()
  in
  loop ()

let create_pool size =
  let p =
    { mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      region = None;
      stop = false;
      workers = [] }
  in
  p.workers <-
    List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop p));
  p

let shutdown_pool p =
  Mutex.lock p.mutex;
  p.stop <- true;
  Condition.broadcast p.work;
  Mutex.unlock p.mutex;
  List.iter Domain.join p.workers;
  p.workers <- []

(* The live pool, keyed by its size; resized lazily when the domain
   count changes. Only non-task domains reach this (tasks run nested
   calls inline), so plain refs suffice. *)
let state = ref None

let shutdown () =
  match !state with
  | Some (_, p) ->
      state := None;
      shutdown_pool p
  | None -> ()

let () = at_exit shutdown

let get_pool () =
  let d = num_domains () in
  if d <= 1 then None
  else
    match !state with
    | Some (size, p) when size = d -> Some p
    | _ ->
        shutdown ();
        let p = create_pool d in
        state := Some (d, p);
        Some p

let run_region p tasks =
  let n = Array.length tasks in
  if n > 0 then begin
    let r = { tasks; next = Atomic.make 0; pending = Atomic.make n } in
    Mutex.lock p.mutex;
    while p.region <> None do
      Condition.wait p.finished p.mutex
    done;
    p.region <- Some r;
    Condition.broadcast p.work;
    Mutex.unlock p.mutex;
    drain p r;
    Mutex.lock p.mutex;
    while Atomic.get r.pending > 0 do
      Condition.wait p.finished p.mutex
    done;
    Mutex.unlock p.mutex
  end

(* Optional per-region task wrapper (installed by the observability
   layer): the factory runs on the submitting domain at submission
   time — capturing e.g. the current tracing-span context — and the
   wrapper it returns runs around every task of the region on
   whichever domain executes it. *)
let task_wrapper : (unit -> (unit -> unit) -> unit -> unit) option ref =
  ref None

let set_task_wrapper w = task_wrapper := w

(* Run [body lo hi] over the fixed grid of [chunk]-sized slices of
   [0, n). Parallel when a pool is available and the caller is not
   already inside a task; inline otherwise. On task exceptions the
   remaining tasks still run; the lowest-chunk exception re-raises. *)
let run_chunks ~chunk ~n body =
  if n > 0 then begin
    let chunk = max 1 chunk in
    if n <= chunk || busy () then body 0 n
    else
      match get_pool () with
      | None -> body 0 n
      | Some p ->
          let nchunks = (n + chunk - 1) / chunk in
          let exns = Array.make nchunks None in
          let wrap =
            match !task_wrapper with
            | None -> fun task -> task
            | Some mk -> mk ()
          in
          let tasks =
            Array.init nchunks (fun c ->
                let lo = c * chunk and hi = min n ((c + 1) * chunk) in
                fun () ->
                  let flag = Domain.DLS.get busy_key in
                  let saved = !flag in
                  flag := true;
                  (try wrap (fun () -> body lo hi) () with
                  | e -> exns.(c) <- Some e);
                  flag := saved)
          in
          run_region p tasks;
          Array.iter (function Some e -> raise e | None -> ()) exns
  end

let default_chunk = 64

let init ?(chunk = default_chunk) n f =
  if n <= 0 then [||]
  else if n <= max 1 chunk || num_domains () <= 1 || busy () then
    Array.init n f
  else begin
    let res = Array.make n None in
    run_chunks ~chunk ~n (fun lo hi ->
        for i = lo to hi - 1 do
          res.(i) <- Some (f i)
        done);
    Array.map (function Some v -> v | None -> assert false) res
  end

let parallel_map ?(chunk = 1) f arr =
  init ~chunk (Array.length arr) (fun i -> f arr.(i))

let float_init ?(chunk = default_chunk) n f =
  if n <= 0 then [||]
  else begin
    let res = Array.make n 0. in
    run_chunks ~chunk ~n (fun lo hi ->
        for i = lo to hi - 1 do
          res.(i) <- f i
        done);
    res
  end

let for_reduce ?chunk ~init:acc0 ~f ~combine n =
  if n <= 0 then acc0
  else begin
    let values = init ?chunk n f in
    let acc = ref acc0 in
    for i = 0 to n - 1 do
      acc := combine !acc values.(i)
    done;
    !acc
  end

let reduce_chunks ?(chunk = default_chunk) ~local ~combine n =
  if n <= 0 then None
  else begin
    let chunk = max 1 chunk in
    let nchunks = (n + chunk - 1) / chunk in
    (* The grid is a function of [chunk] and [n] alone, and locals are
       folded in chunk order, so the reduction tree — hence the result,
       associative combine or not — is identical at every domain
       count. *)
    let locals =
      init ~chunk:1 nchunks (fun c ->
          local (c * chunk) (min n ((c + 1) * chunk)))
    in
    let acc = ref locals.(0) in
    for c = 1 to nchunks - 1 do
      acc := combine !acc locals.(c)
    done;
    Some !acc
  end

let argmax_float ?chunk ~n score =
  reduce_chunks ?chunk
    ~local:(fun lo hi ->
      let best = ref lo and best_v = ref (score lo) in
      for i = lo + 1 to hi - 1 do
        let v = score i in
        if v > !best_v then begin
          best := i;
          best_v := v
        end
      done;
      (!best, !best_v))
    ~combine:(fun (i, v) (i', v') -> if v' > v then (i', v') else (i, v))
    n

let with_num_domains n f =
  let saved = !override in
  set_num_domains (Some n);
  Fun.protect ~finally:(fun () -> override := saved) f
