(** Compact bit vectors backed by [Bytes].

    One bit per element instead of one word per [bool]: an
    [n]-element set occupies [n/8] bytes in a single allocation, so
    per-worker solver state stays cache-resident where a
    [bool array array] would blow the working set up 64x.

    All operations bounds-check and raise [Invalid_argument] on an
    index outside [0, length - 1]. *)

type t

val create : int -> t
(** [create n] is a set over [0 .. n-1] with every bit clear.
    @raise Invalid_argument when [n < 0]. *)

val length : t -> int
(** Number of addressable bits. *)

val get : t -> int -> bool
(** [get t i] is true when bit [i] is set. *)

val mem : t -> int -> bool
(** Alias of {!get}, for set-membership call sites. *)

val set : t -> int -> unit
(** [set t i] sets bit [i]. *)

val unsafe_get : t -> int -> bool
(** {!get} without the bounds check. Only for loops whose index range
    is already proven to lie inside [0, length): an out-of-range index
    reads (or, for {!unsafe_set}, corrupts) adjacent memory. *)

val unsafe_set : t -> int -> unit
(** {!set} without the bounds check — same contract as
    {!unsafe_get}. *)

val clear : t -> int -> unit
(** [clear t i] clears bit [i]. *)

val assign : t -> int -> bool -> unit
(** [assign t i b] sets bit [i] to [b]. *)

val count : t -> int
(** Number of set bits (population count). *)

val reset : t -> unit
(** Clear every bit. *)

val copy : t -> t
(** An independent copy. *)

val iter_set : t -> (int -> unit) -> unit
(** [iter_set t f] applies [f] to every set bit index, ascending. *)

val equal : t -> t -> bool
(** Same length and same bits. *)
