(** Imperative binary min-heap.

    Used by the discrete-event simulator (event queue ordered by time)
    and by greedy algorithms (priority by cost-effectiveness, negated). *)

type 'a t
(** Min-heap of elements of type ['a]. *)

val create : cmp:('a -> 'a -> int) -> 'a t
(** Empty heap with the given total order ([cmp a b < 0] means [a] has
    higher priority, i.e., is popped first). *)

val length : 'a t -> int
(** Number of elements currently stored. *)

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Insert an element. Amortized [O(log n)]. *)

val peek : 'a t -> 'a option
(** Smallest element, without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val replace_top : 'a t -> 'a -> unit
(** [replace_top t x] replaces the smallest element with [x] in one
    [O(log n)] sift — the fused pop-then-push that lazy-greedy
    (CELF-style) loops perform on every stale re-evaluation.
    @raise Invalid_argument on an empty heap. *)

val pop_exn : 'a t -> 'a
(** Like {!pop}. @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit
(** Remove all elements. *)

val to_sorted_list : 'a t -> 'a list
(** Drain a copy of the heap in priority order; the heap is unchanged. *)
