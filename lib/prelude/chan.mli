(** A mutex-guarded FIFO channel.

    The delivery queue under the replication transport: the sender
    enqueues framed records, the receiver drains them in order. All
    operations take the channel's lock, so a producer and a consumer
    may live on different {!Pool} domains; within one domain the
    overhead is a few nanoseconds per operation.

    The queue is unbounded — the replication layer bounds it by
    draining followers at every heartbeat tick, and the follower-lag
    gauges make any backlog visible. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Enqueue at the tail. *)

val pop : 'a t -> 'a option
(** Dequeue from the head; [None] when empty. *)

val peek : 'a t -> 'a option
(** Head element without removing it; [None] when empty. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val clear : 'a t -> unit
(** Drop every queued element. *)
