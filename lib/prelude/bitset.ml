type t = { bits : Bytes.t; length : int }

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative length";
  { bits = Bytes.make ((n + 7) lsr 3) '\000'; length = n }

let length t = t.length

let check t i op =
  if i < 0 || i >= t.length then
    invalid_arg
      (Printf.sprintf "Bitset.%s: index %d out of bounds [0, %d)" op i
         t.length)

let unsafe_get t i =
  Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let get t i =
  check t i "get";
  unsafe_get t i

let mem = get

let unsafe_set t i =
  let byte = i lsr 3 in
  Bytes.unsafe_set t.bits byte
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get t.bits byte) lor (1 lsl (i land 7))))

let set t i =
  check t i "set";
  unsafe_set t i

let clear t i =
  check t i "clear";
  let byte = i lsr 3 in
  Bytes.unsafe_set t.bits byte
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get t.bits byte)
       land lnot (1 lsl (i land 7))))

let assign t i b = if b then set t i else clear t i

(* 8-bit popcount table, built once. *)
let popcount8 =
  Array.init 256 (fun b ->
      let rec go b acc = if b = 0 then acc else go (b lsr 1) (acc + (b land 1)) in
      go b 0)

let count t =
  let acc = ref 0 in
  for i = 0 to Bytes.length t.bits - 1 do
    acc := !acc + popcount8.(Char.code (Bytes.unsafe_get t.bits i))
  done;
  !acc

let reset t = Bytes.fill t.bits 0 (Bytes.length t.bits) '\000'
let copy t = { bits = Bytes.copy t.bits; length = t.length }

let iter_set t f =
  for byte = 0 to Bytes.length t.bits - 1 do
    let b = Char.code (Bytes.unsafe_get t.bits byte) in
    if b <> 0 then
      for bit = 0 to 7 do
        if b land (1 lsl bit) <> 0 then f ((byte lsl 3) lor bit)
      done
  done

let equal a b = a.length = b.length && Bytes.equal a.bits b.bits
