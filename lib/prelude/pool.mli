(** A reusable domain pool with deterministic parallel combinators.

    The pool fans independent work items across OCaml domains while
    guaranteeing that every result is {e bit-identical} to the
    sequential reference, whatever the domain count or completion
    order:

    - {!parallel_map} and {!init} are order-preserving: slot [i] of
      the result always holds [f x_i].
    - {!for_reduce} computes element values in parallel but folds
      them {e sequentially in index order}, so non-associative
      accumulations (float sums) associate exactly like the plain
      [for] loop they replace.
    - {!reduce_chunks} and {!argmax_float} cut the index space into a
      chunk grid that depends only on the caller-supplied chunk size,
      never on the domain count, and combine chunk results in
      ascending chunk order; ties in {!argmax_float} break to the
      lowest index regardless of which domain finished first.

    The worker count is resolved, in priority order, from
    {!set_num_domains}, the [VDMC_DOMAINS] environment variable, and
    [Domain.recommended_domain_count () - 1]; a count of [1] disables
    the pool entirely and every combinator runs inline, making the
    sequential fallback exact by construction. Nested parallel calls
    (a task that itself invokes a combinator) also run inline, so
    solvers may be freely composed.

    Exceptions raised by tasks are caught, the remaining tasks run to
    completion, and the exception of the lowest-indexed failing task
    is re-raised in the calling domain; the pool survives and is
    reusable afterwards. *)

val num_domains : unit -> int
(** The active domain count (>= 1). *)

val set_num_domains : int option -> unit
(** [set_num_domains (Some n)] forces the count to [max 1 n] (takes
    precedence over [VDMC_DOMAINS]); [None] restores the default
    resolution. The pool is resized lazily on the next parallel
    call. *)

val with_num_domains : int -> (unit -> 'a) -> 'a
(** Run a thunk under a forced domain count, restoring the previous
    setting afterwards (exception-safe). *)

val set_task_wrapper : (unit -> (unit -> unit) -> unit -> unit) option -> unit
(** Install (or clear) the per-region task wrapper. The outer function
    is called once per submitted region, on the submitting domain —
    letting it capture submission-time context such as the current
    tracing span; the function it returns is applied to every task of
    that region and runs on the executing domain. Installed by the
    observability layer to propagate span parents into pool tasks and
    to meter task queueing; identity when unset. *)

val shutdown : unit -> unit
(** Join all pool workers. The pool restarts lazily on the next
    parallel call; mainly useful in tests and at exit (installed
    automatically). *)

val init : ?chunk:int -> int -> (int -> 'a) -> 'a array
(** [init n f] is [Array.init n f] with the calls to [f] distributed
    over the pool. [chunk] is the number of consecutive indices per
    task (default 64); [n <= chunk] runs inline. *)

val parallel_map : ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel [Array.map]. [chunk] defaults to [1]
    (each element is its own task — right for coarse work items like
    whole solver runs). *)

val float_init : ?chunk:int -> int -> (int -> float) -> float array
(** {!init} specialised to unboxed float results. *)

val for_reduce :
  ?chunk:int ->
  init:'acc ->
  f:(int -> 'b) ->
  combine:('acc -> 'b -> 'acc) ->
  int ->
  'acc
(** [for_reduce ~init ~f ~combine n] is
    [combine (... (combine init (f 0)) ...) (f (n-1))]: the [f i] run
    in parallel, the fold is sequential in index order, so the result
    is bit-identical to the sequential loop even when [combine] is
    not associative. *)

val reduce_chunks :
  ?chunk:int ->
  local:(int -> int -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  int ->
  'a option
(** [reduce_chunks ~local ~combine n] evaluates
    [local lo hi] over the fixed grid
    [[0,chunk), [chunk,2*chunk), ...] in parallel and folds the chunk
    results with [combine] in ascending chunk order. The grid depends
    only on [chunk] (default 64) and [n], never on the domain count,
    so any [combine] — associative or not — yields the same result at
    every domain count. [None] when [n <= 0]. *)

val argmax_float : ?chunk:int -> n:int -> (int -> float) -> (int * float) option
(** Lowest-index maximiser of [score i] over [0 .. n-1], computed
    chunk-locally and combined deterministically: the result is
    exactly that of the sequential scan keeping the first strict
    maximum. [None] when [n <= 0]. *)
