(** Sorted dynamic integer sets.

    A growable vector of distinct ints kept in ascending order:
    membership and rank by binary search, insert/remove by [memmove].
    The engine uses these for sparse index sets whose *iteration order
    must be a function of the member set alone* — e.g. the per-stream
    interested-slot sets the planner accumulates floats over. A hash
    table iterates in insertion-history order (so a snapshot-restored
    set would sum in a different order than the live set it mirrors and
    crash recovery would diverge in the last ulp); a bitset iterates
    ascending but costs a full scan of the universe per traversal.
    Sorted vectors give ascending order at cost proportional to the
    membership, which is what makes million-slot views affordable when
    each stream only interests a few hundred slots.

    Not thread-safe; confine each set to one writer. *)

type t

val create : unit -> t
(** The empty set. *)

val of_sorted_array : int array -> t
(** Adopt an ascending array of distinct ints (copied).
    @raise Invalid_argument when unsorted or containing duplicates. *)

val length : t -> int
val is_empty : t -> bool

val mem : t -> int -> bool

val index : t -> int -> int
(** Rank of the element: [index t x] is the position of [x] in
    ascending order, or [-1] when absent. *)

val get : t -> int -> int
(** [get t i] is the [i]-th smallest element.
    @raise Invalid_argument when [i] is out of range. *)

val add : t -> int -> bool
(** Insert; false (and no change) when already present. *)

val remove : t -> int -> bool
(** Delete; false (and no change) when absent. *)

val clear : t -> unit
(** Empty the set, keeping the capacity. *)

val iter : t -> (int -> unit) -> unit
(** Ascending order. The callback must not mutate the set. *)

val fold : t -> init:'a -> f:('a -> int -> 'a) -> 'a
(** Ascending order. *)

val to_list : t -> int list
(** Ascending. *)

val copy : t -> t

val equal : t -> t -> bool
(** Same members (hence same iteration order). *)
