(** CRC-32 (IEEE 802.3 / zlib polynomial) checksums.

    Used by the engine's write-ahead log and snapshot layer to detect
    corrupted or torn records. Pure OCaml, table-driven; no external
    dependencies. The checksum of the empty string is [0l]. *)

val digest : ?init:int32 -> string -> int32
(** [digest s] is the CRC-32 of [s]. [init] chains computations:
    [digest ~init:(digest a) b = digest (a ^ b)]. *)

val digest_sub : ?init:int32 -> string -> pos:int -> len:int -> int32
(** CRC-32 of the substring [s.[pos .. pos+len-1]].
    @raise Invalid_argument on an out-of-bounds range. *)

val to_hex : int32 -> string
(** Fixed-width 8-character lowercase hex rendering. *)

val of_hex : string -> int32 option
(** Inverse of {!to_hex}; [None] unless the input is exactly 8 hex
    digits. *)
