(* Observability substrate: monotonic wall clock, log-scaled latency
   histograms, a labeled metric registry, and tracing spans that nest
   across Prelude.Pool tasks. Zero dependencies beyond the OCaml
   distribution (unix) and prelude. *)

module Clock = struct
  (* Wall clock made monotone: a torn NTP step backwards repeats the
     last value instead of producing negative latencies. The CAS loop
     makes the non-decreasing guarantee hold across domains too. *)
  let last = Atomic.make 0.

  let rec now () =
    let t = Unix.gettimeofday () in
    let l = Atomic.get last in
    if t >= l then if Atomic.compare_and_set last l t then t else now ()
    else l

  let elapsed_since t0 = Float.max 0. (now () -. t0)
end

module Hist = struct
  (* Log-scaled buckets: 4 per octave starting at 1 ns, 176 buckets —
     the last finite boundary is 1e-9 * 2^44 ≈ 4.9 hours, far beyond
     any latency this engine records. Exact count/sum/min/max ride
     along so means and extremes are not quantized. *)
  let lowest = 1e-9
  let per_octave = 4
  let num_buckets = 176

  type t = {
    counts : int array;
    mutable count : int;
    mutable sum : float;
    mutable sum_sq : float;
    mutable vmin : float;
    mutable vmax : float;
    lock : Mutex.t;
  }

  let create () =
    { counts = Array.make num_buckets 0;
      count = 0;
      sum = 0.;
      sum_sq = 0.;
      vmin = infinity;
      vmax = neg_infinity;
      lock = Mutex.create () }

  let locked t f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

  let bucket_of x =
    if x <= lowest then 0
    else
      let i =
        int_of_float
          (Float.floor (float per_octave *. Prelude.Float_ops.log2 (x /. lowest)))
      in
      if i < 0 then 0 else if i >= num_buckets then num_buckets - 1 else i

  (* Boundaries: bucket i covers (lower i, upper i]. *)
  let upper i = lowest *. Float.pow 2. (float (i + 1) /. float per_octave)
  let midpoint i = lowest *. Float.pow 2. ((float i +. 0.5) /. float per_octave)

  let observe t x =
    locked t (fun () ->
        t.counts.(bucket_of x) <- t.counts.(bucket_of x) + 1;
        t.count <- t.count + 1;
        t.sum <- t.sum +. x;
        t.sum_sq <- t.sum_sq +. (x *. x);
        if x < t.vmin then t.vmin <- x;
        if x > t.vmax then t.vmax <- x)

  let clear t =
    locked t (fun () ->
        Array.fill t.counts 0 num_buckets 0;
        t.count <- 0;
        t.sum <- 0.;
        t.sum_sq <- 0.;
        t.vmin <- infinity;
        t.vmax <- neg_infinity)

  let merge_into ~into src =
    (* Copy src under its lock first so the two locks never nest the
       other way around. *)
    let counts, count, sum, sum_sq, vmin, vmax =
      locked src (fun () ->
          ( Array.copy src.counts,
            src.count,
            src.sum,
            src.sum_sq,
            src.vmin,
            src.vmax ))
    in
    locked into (fun () ->
        Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) counts;
        into.count <- into.count + count;
        into.sum <- into.sum +. sum;
        into.sum_sq <- into.sum_sq +. sum_sq;
        if vmin < into.vmin then into.vmin <- vmin;
        if vmax > into.vmax then into.vmax <- vmax)

  let count t = locked t (fun () -> t.count)
  let sum t = locked t (fun () -> t.sum)
  let min_value t = locked t (fun () -> if t.count = 0 then nan else t.vmin)
  let max_value t = locked t (fun () -> if t.count = 0 then nan else t.vmax)
  let bucket_counts t = locked t (fun () -> Array.copy t.counts)

  (* Rank q of the stored distribution, estimated as the geometric
     midpoint of the bucket holding that rank, clamped to the exact
     observed range (a single sample therefore reports itself). *)
  let quantile_unlocked t q =
    if t.count = 0 then nan
    else begin
      let target = max 1 (int_of_float (Float.ceil (q *. float t.count))) in
      let i = ref 0 and cum = ref 0 in
      while !cum < target && !i < num_buckets do
        cum := !cum + t.counts.(!i);
        incr i
      done;
      let est = midpoint (max 0 (!i - 1)) in
      Float.min t.vmax (Float.max t.vmin est)
    end

  let quantile t q = locked t (fun () -> quantile_unlocked t q)

  let to_summary t : Prelude.Stats.summary =
    locked t (fun () ->
        if t.count = 0 then
          { Prelude.Stats.count = 0; mean = nan; stddev = nan; min = nan;
            max = nan; p50 = nan; p90 = nan; p99 = nan }
        else
          let n = float t.count in
          let mean = t.sum /. n in
          let stddev =
            if t.count < 2 then 0.
            else
              sqrt
                (Float.max 0.
                   ((t.sum_sq -. (n *. mean *. mean)) /. (n -. 1.)))
          in
          { Prelude.Stats.count = t.count;
            mean;
            stddev;
            min = t.vmin;
            max = t.vmax;
            p50 = quantile_unlocked t 0.50;
            p90 = quantile_unlocked t 0.90;
            p99 = quantile_unlocked t 0.99 })

  (* One-line textual codec ("h1 <count> <sum> <sumsq> <min> <max>
     i:c ..."), floats in hex so the round trip is bit-exact. Used by
     the Snapshot v2 envelope. *)
  let encode t =
    locked t (fun () ->
        let buf = Buffer.create 128 in
        Printf.bprintf buf "h1 %d %h %h %h %h" t.count t.sum t.sum_sq t.vmin
          t.vmax;
        Array.iteri
          (fun i c -> if c > 0 then Printf.bprintf buf " %d:%d" i c)
          t.counts;
        Buffer.contents buf)

  let decode s =
    let fail msg = Error (Printf.sprintf "Hist.decode: %s" msg) in
    match
      String.split_on_char ' ' (String.trim s)
      |> List.filter (fun tok -> tok <> "")
    with
    | "h1" :: count :: sum :: sum_sq :: vmin :: vmax :: buckets -> (
        match
          ( int_of_string_opt count,
            float_of_string_opt sum,
            float_of_string_opt sum_sq,
            float_of_string_opt vmin,
            float_of_string_opt vmax )
        with
        | Some count, Some sum, Some sum_sq, Some vmin, Some vmax -> (
            let t = create () in
            t.count <- count;
            t.sum <- sum;
            t.sum_sq <- sum_sq;
            t.vmin <- vmin;
            t.vmax <- vmax;
            match
              List.iter
                (fun tok ->
                  match String.split_on_char ':' tok with
                  | [ i; c ] -> (
                      match (int_of_string_opt i, int_of_string_opt c) with
                      | Some i, Some c when i >= 0 && i < num_buckets && c >= 0
                        ->
                          t.counts.(i) <- c
                      | _ -> failwith (Printf.sprintf "bad bucket %S" tok))
                  | _ -> failwith (Printf.sprintf "bad bucket %S" tok))
                buckets
            with
            | () -> Ok t
            | exception Failure msg -> fail msg)
        | _ -> fail "bad scalar field")
    | _ -> fail "bad magic (want h1)"
end

module Metrics = struct
  type counter = int Atomic.t
  type gauge = float Atomic.t

  type instrument =
    | Counter of counter
    | Gauge of gauge
    | Histogram of Hist.t

  let lock = Mutex.create ()

  let table : (string * (string * string) list, instrument) Hashtbl.t =
    Hashtbl.create 64

  let canon labels = List.sort compare labels

  let register name labels make match_ =
    let key = (name, canon labels) in
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () ->
        match Hashtbl.find_opt table key with
        | Some i -> (
            match match_ i with
            | Some v -> v
            | None ->
                invalid_arg
                  (Printf.sprintf
                     "Obs.Metrics: %s already registered with another kind"
                     name))
        | None ->
            let i = make () in
            Hashtbl.replace table key i;
            match match_ i with Some v -> v | None -> assert false)

  let counter ?(labels = []) name =
    register name labels
      (fun () -> Counter (Atomic.make 0))
      (function Counter c -> Some c | _ -> None)

  let gauge ?(labels = []) name =
    register name labels
      (fun () -> Gauge (Atomic.make 0.))
      (function Gauge g -> Some g | _ -> None)

  let histogram ?(labels = []) name =
    register name labels
      (fun () -> Histogram (Hist.create ()))
      (function Histogram h -> Some h | _ -> None)

  let inc ?(n = 1) c = ignore (Atomic.fetch_and_add c n)
  let value c = Atomic.get c
  let set g v = Atomic.set g v
  let gauge_value g = Atomic.get g

  let snapshot () =
    Mutex.lock lock;
    let items =
      Fun.protect
        ~finally:(fun () -> Mutex.unlock lock)
        (fun () ->
          Hashtbl.fold
            (fun (name, labels) i acc -> (name, labels, i) :: acc)
            table [])
    in
    List.sort
      (fun (n1, l1, _) (n2, l2, _) -> compare (n1, l1) (n2, l2))
      items

  (* Cross-label merges. A sharded engine registers one series per
     shard under the same metric name (labels [shard="i"]); these fold
     every label set of a name back into the process-wide total, which
     is the documented way to read "one engine" numbers off a
     multi-shard page. *)
  let sum_counter name =
    List.fold_left
      (fun acc -> function
        | n, _, Counter c when String.equal n name -> acc + Atomic.get c
        | _ -> acc)
      0 (snapshot ())

  let sum_gauge name =
    List.fold_left
      (fun acc -> function
        | n, _, Gauge g when String.equal n name -> acc +. Atomic.get g
        | _ -> acc)
      0. (snapshot ())

  let merged_histogram name =
    let out = Hist.create () in
    List.iter
      (function
        | n, _, Histogram h when String.equal n name ->
            Hist.merge_into ~into:out h
        | _ -> ())
      (snapshot ());
    out


  let reset () =
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () -> Hashtbl.reset table)
end

module Json = struct
  (* The engine's JSON reports are written with Printf, and "%f" of a
     nan or infinity ("nan", "inf") is not JSON. Every float that can
     legally be empty-histogram nan or an unmeasured sentinel must go
     through [num], which emits the explicit null convention instead. *)
  let num ?(precision = 6) x =
    if Float.is_finite x then Printf.sprintf "%.*f" precision x else "null"

  let num_g x = if Float.is_finite x then Printf.sprintf "%g" x else "null"

  (* Minimal validating parser — no values built, just a yes/no on
     RFC-8259 shape — so bench writers can refuse to leave an invalid
     document on disk and tests can pin the writers' output. *)
  let validate s =
    let n = String.length s in
    let pos = ref 0 in
    let exception Bad of string in
    let bad msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let skip_ws () =
      while
        !pos < n
        && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        advance ()
      done
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> bad (Printf.sprintf "expected %C" c)
    in
    let literal w =
      let l = String.length w in
      if !pos + l <= n && String.sub s !pos l = w then pos := !pos + l
      else bad (Printf.sprintf "expected %s" w)
    in
    let string_ () =
      expect '"';
      let fin = ref false in
      while not !fin do
        match peek () with
        | None -> bad "unterminated string"
        | Some '"' ->
            advance ();
            fin := true
        | Some '\\' -> (
            advance ();
            match peek () with
            | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
                advance ()
            | Some 'u' ->
                advance ();
                for _ = 1 to 4 do
                  match peek () with
                  | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                  | _ -> bad "bad \\u escape"
                done
            | _ -> bad "bad escape")
        | Some c when Char.code c < 0x20 -> bad "control char in string"
        | Some _ -> advance ()
      done
    in
    let digits () =
      let saw = ref false in
      while (match peek () with Some '0' .. '9' -> true | _ -> false) do
        saw := true;
        advance ()
      done;
      if not !saw then bad "expected digit"
    in
    let number () =
      (match peek () with Some '-' -> advance () | _ -> ());
      digits ();
      (match peek () with
      | Some '.' ->
          advance ();
          digits ()
      | _ -> ());
      match peek () with
      | Some ('e' | 'E') ->
          advance ();
          (match peek () with Some ('+' | '-') -> advance () | _ -> ());
          digits ()
      | _ -> ()
    in
    let rec value () =
      skip_ws ();
      (match peek () with
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then advance ()
          else begin
            let more = ref true in
            while !more do
              skip_ws ();
              string_ ();
              skip_ws ();
              expect ':';
              value ();
              skip_ws ();
              match peek () with
              | Some ',' -> advance ()
              | Some '}' ->
                  advance ();
                  more := false
              | _ -> bad "expected , or }"
            done
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then advance ()
          else begin
            let more = ref true in
            while !more do
              value ();
              skip_ws ();
              match peek () with
              | Some ',' -> advance ()
              | Some ']' ->
                  advance ();
                  more := false
              | _ -> bad "expected , or ]"
            done
          end
      | Some '"' -> string_ ()
      | Some 't' -> literal "true"
      | Some 'f' -> literal "false"
      | Some 'n' -> literal "null"
      | Some ('-' | '0' .. '9') -> number ()
      | _ -> bad "expected value");
      skip_ws ()
    in
    match
      value ();
      if !pos <> n then bad "trailing garbage"
    with
    | () -> Ok ()
    | exception Bad msg -> Error msg

  let validate_file path =
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    match validate s with
    | Ok () -> Ok ()
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
end

module Trace = struct
  let lock = Mutex.create ()
  let chan : out_channel option ref = ref None
  let emitted = Atomic.make 0

  let locked f =
    Mutex.lock lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

  let close () =
    locked (fun () ->
        match !chan with
        | Some oc ->
            chan := None;
            close_out oc
        | None -> ())

  let set_output path =
    close ();
    let oc = open_out_bin path in
    locked (fun () -> chan := Some oc)

  let enabled () = !chan <> None
  let spans_emitted () = Atomic.get emitted

  let () = at_exit close

  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\r' -> Buffer.add_string buf "\\r"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let emit_span ~name ~id ~parent ~start ~dur ~attrs =
    locked (fun () ->
        match !chan with
        | None -> ()
        | Some oc ->
            let buf = Buffer.create 160 in
            Printf.bprintf buf "{\"name\":\"%s\",\"id\":%d,\"parent\":%s"
              (escape name) id
              (match parent with Some p -> string_of_int p | None -> "null");
            Printf.bprintf buf ",\"start_s\":%.6f,\"dur_s\":%.9f" start dur;
            if attrs <> [] then begin
              Buffer.add_string buf ",\"attrs\":{";
              List.iteri
                (fun i (k, v) ->
                  if i > 0 then Buffer.add_char buf ',';
                  Printf.bprintf buf "\"%s\":\"%s\"" (escape k) (escape v))
                attrs;
              Buffer.add_char buf '}'
            end;
            Buffer.add_string buf "}\n";
            (* No per-line flush: the sink is best-effort telemetry
               and close (installed at_exit) flushes everything. *)
            output_string oc (Buffer.contents buf);
            ignore (Atomic.fetch_and_add emitted 1))
end

module Span = struct
  let next_id = Atomic.make 1

  (* The current span id, per domain. Pool submissions capture it on
     the submitting domain and re-install it around each task (see the
     task wrapper below), so spans opened inside pool tasks parent to
     the span that submitted the region. *)
  let context : int option ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref None)

  let current () = !(Domain.DLS.get context)

  let with_ ?(attrs = []) ~name f =
    let r = Domain.DLS.get context in
    let parent = !r in
    let id = Atomic.fetch_and_add next_id 1 in
    let t0 = Clock.now () in
    r := Some id;
    let finish () =
      r := parent;
      let dur = Clock.elapsed_since t0 in
      Hist.observe
        (Metrics.histogram ~labels:[ ("span", name) ] "span_duration_seconds")
        dur;
      if Trace.enabled () then
        Trace.emit_span ~name ~id ~parent ~start:t0 ~dur ~attrs
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
end

(* Pool instrumentation + span-context propagation: the factory runs
   once per submitted region on the submitting domain (capturing the
   parent span and the submit time); the returned wrapper runs around
   every task on whichever domain picks it up. *)
let pool_tasks = lazy (Metrics.counter "pool_tasks_total")
let pool_regions = lazy (Metrics.counter "pool_regions_total")
let pool_queue_delay = lazy (Metrics.histogram "pool_task_queue_delay_seconds")
let pool_task_run = lazy (Metrics.histogram "pool_task_run_seconds")

let () =
  Prelude.Pool.set_task_wrapper
    (Some
       (fun () ->
         let parent = Span.current () in
         let submitted = Clock.now () in
         Metrics.inc (Lazy.force pool_regions);
         fun task () ->
           Metrics.inc (Lazy.force pool_tasks);
           let r = Domain.DLS.get Span.context in
           let saved = !r in
           r := parent;
           let t0 = Clock.now () in
           Hist.observe (Lazy.force pool_queue_delay) (t0 -. submitted);
           Fun.protect
             ~finally:(fun () ->
               Hist.observe (Lazy.force pool_task_run)
                 (Clock.elapsed_since t0);
               r := saved)
             task))

module Export = struct
  let label_string labels =
    match labels with
    | [] -> ""
    | labels ->
        "{"
        ^ String.concat ","
            (List.map
               (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (Trace.escape v))
               labels)
        ^ "}"

  let prom_float x =
    if Float.is_nan x then "NaN"
    else if x = infinity then "+Inf"
    else if x = neg_infinity then "-Inf"
    else Printf.sprintf "%.9g" x

  let refresh_gauges () =
    Metrics.set (Metrics.gauge "pool_domains")
      (float (Prelude.Pool.num_domains ()))

  let prometheus () =
    refresh_gauges ();
    let buf = Buffer.create 4096 in
    let typed = Hashtbl.create 16 in
    let header name kind =
      if not (Hashtbl.mem typed name) then begin
        Hashtbl.replace typed name ();
        Printf.bprintf buf "# TYPE %s %s\n" name kind
      end
    in
    List.iter
      (fun (name, labels, i) ->
        match i with
        | Metrics.Counter c ->
            header name "counter";
            Printf.bprintf buf "%s%s %d\n" name (label_string labels)
              (Metrics.value c)
        | Metrics.Gauge g ->
            header name "gauge";
            Printf.bprintf buf "%s%s %s\n" name (label_string labels)
              (prom_float (Metrics.gauge_value g))
        | Metrics.Histogram h ->
            header name "histogram";
            let counts = Hist.bucket_counts h in
            let cum = ref 0 in
            Array.iteri
              (fun b c ->
                if c > 0 then begin
                  cum := !cum + c;
                  Printf.bprintf buf "%s_bucket%s %d\n" name
                    (label_string (labels @ [ ("le", prom_float (Hist.upper b)) ]))
                    !cum
                end)
              counts;
            Printf.bprintf buf "%s_bucket%s %d\n" name
              (label_string (labels @ [ ("le", "+Inf") ]))
              (Hist.count h);
            Printf.bprintf buf "%s_sum%s %s\n" name (label_string labels)
              (prom_float (Hist.sum h));
            Printf.bprintf buf "%s_count%s %d\n" name (label_string labels)
              (Hist.count h))
      (Metrics.snapshot ());
    Buffer.contents buf

  let write_prometheus path =
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (prometheus ()))

  let stats_table () =
    refresh_gauges ();
    let module T = Prelude.Table in
    let t =
      T.create
        [ ("metric", T.Left); ("kind", T.Left); ("count", T.Right);
          ("mean", T.Right); ("p50", T.Right); ("p90", T.Right);
          ("p99", T.Right); ("max", T.Right) ]
    in
    let name_of base labels =
      base
      ^ String.concat ""
          (List.map (fun (k, v) -> Printf.sprintf "[%s=%s]" k v) labels)
    in
    List.iter
      (fun (name, labels, i) ->
        match i with
        | Metrics.Counter c ->
            T.add_row t
              [ name_of name labels; "counter";
                string_of_int (Metrics.value c); "-"; "-"; "-"; "-"; "-" ]
        | Metrics.Gauge g ->
            T.add_row t
              [ name_of name labels; "gauge"; "-";
                T.cell_f (Metrics.gauge_value g); "-"; "-"; "-"; "-" ]
        | Metrics.Histogram h ->
            let s = Hist.to_summary h in
            T.add_row t
              [ name_of name labels; "histogram";
                string_of_int s.Prelude.Stats.count;
                T.cell_f s.Prelude.Stats.mean;
                T.cell_f s.Prelude.Stats.p50;
                T.cell_f s.Prelude.Stats.p90;
                T.cell_f s.Prelude.Stats.p99;
                T.cell_f s.Prelude.Stats.max ])
      (Metrics.snapshot ());
    T.render t
end
