(** Observability layer: monotonic wall clock, log-scaled latency
    histograms, a labeled metric registry, tracing spans, and text
    exporters.

    Every latency in the engine is measured through {!Clock} — wall
    time, monotone non-decreasing — never [Sys.time], which reports
    process CPU time and therefore sums across pool domains and
    ignores time blocked in I/O. Spans opened inside
    {!Prelude.Pool} tasks parent to the span that submitted the
    region, so traces nest correctly across the domain pool. *)

module Clock : sig
  val now : unit -> float
  (** Monotonic wall-clock seconds (Unix epoch based). Never decreases,
      even across domains or when the system clock steps backwards. *)

  val elapsed_since : float -> float
  (** [elapsed_since t0] is [max 0. (now () -. t0)]. *)
end

module Hist : sig
  (** Log-scaled latency histogram: 4 buckets per octave from 1 ns,
      with exact count/sum/min/max carried alongside the buckets.
      All operations are thread-safe. *)

  type t

  val create : unit -> t
  val observe : t -> float -> unit
  val clear : t -> unit

  val merge_into : into:t -> t -> unit
  (** Add the source's samples into [into]; the source is unchanged. *)

  val count : t -> int
  val sum : t -> float

  val min_value : t -> float
  (** Exact smallest observation; [nan] when empty. *)

  val max_value : t -> float
  (** Exact largest observation; [nan] when empty. *)

  val bucket_counts : t -> int array
  (** A copy of the raw bucket counts (for exporters and tests). *)

  val upper : int -> float
  (** Upper boundary of bucket [i] (for exporters). *)

  val quantile : t -> float -> float
  (** [quantile t q] for [q] in [0, 1]: the geometric midpoint of the
      bucket holding rank [q], clamped to the exact observed range.
      [nan] when empty. *)

  val to_summary : t -> Prelude.Stats.summary
  (** Count, exact mean/min/max, stddev from the running sum of
      squares, and approximate p50/p90/p99 from the buckets. *)

  val encode : t -> string
  (** One-line codec; floats in hex, so decode is bit-exact. *)

  val decode : string -> (t, string) result
end

module Metrics : sig
  (** Process-global registry of labeled instruments. Registration is
      idempotent: the same name + label set returns the same
      instrument. *)

  type counter
  type gauge

  type instrument =
    | Counter of counter
    | Gauge of gauge
    | Histogram of Hist.t

  val counter : ?labels:(string * string) list -> string -> counter
  val gauge : ?labels:(string * string) list -> string -> gauge
  val histogram : ?labels:(string * string) list -> string -> Hist.t

  val inc : ?n:int -> counter -> unit
  val value : counter -> int
  val set : gauge -> float -> unit
  val gauge_value : gauge -> float

  val snapshot : unit -> (string * (string * string) list * instrument) list
  (** All registered instruments, sorted by name then labels. *)

  val sum_counter : string -> int
  (** Sum of a counter's value across every label set it is registered
      under. The merge contract for sharded engines: each shard
      registers its instruments under a distinguishing label (e.g.
      [shard="3"]), the exporter keeps the per-shard series, and
      aggregate views fold them with this. *)

  val sum_gauge : string -> float
  (** Like {!sum_counter} for gauges. Summation is the right merge for
      the additive gauges the engine exports (active users, admitted
      streams); non-additive gauges should be read per-label from
      {!snapshot}. *)

  val merged_histogram : string -> Hist.t
  (** A fresh histogram holding {!Hist.merge_into} of every label set
      registered under the name. Bucket merge is exact (shared log
      scale), so cross-shard latency quantiles are as faithful as any
      single shard's. *)

  val reset : unit -> unit
  (** Drop every registered instrument (tests only). *)
end

module Json : sig
  (** Guard rails for the Printf-built JSON reports: empty-histogram
      percentiles are [nan], unmeasured sentinels are [nan], and
      ["%f"] of either is not JSON. Route every float that can be
      non-finite through {!num}, and validate whole documents with
      {!validate} / {!validate_file} before leaving them on disk. *)

  val num : ?precision:int -> float -> string
  (** ["%.*f"] of a finite float (default precision 6); the literal
      ["null"] for nan and infinities — the explicit "not measured"
      convention of every BENCH_*.json document. *)

  val num_g : float -> string
  (** ["%g"] formatting variant of {!num}. *)

  val validate : string -> (unit, string) result
  (** Accept iff the string is one well-formed JSON value (RFC 8259
      shape; no values are built). *)

  val validate_file : string -> (unit, string) result
end

module Trace : sig
  (** JSONL span sink. Disabled until {!set_output}; spans are then
      appended one JSON object per line, buffered, and flushed by
      {!close} (also installed via [at_exit]). *)

  val set_output : string -> unit
  val close : unit -> unit
  val enabled : unit -> bool

  val spans_emitted : unit -> int
  (** Spans written to the sink since process start. *)
end

module Span : sig
  val with_ : ?attrs:(string * string) list -> name:string -> (unit -> 'a) -> 'a
  (** Run the thunk inside a named span: records its wall duration into
      the [span_duration_seconds{span=name}] histogram and, when
      {!Trace.enabled}, emits a JSONL record with the parent span id.
      Exception-safe; the span context is restored either way. *)

  val current : unit -> int option
  (** The innermost open span's id on this domain, if any. *)
end

module Export : sig
  val prometheus : unit -> string
  (** Prometheus text format: counters, gauges, and histograms (as
      cumulative [_bucket{le=...}] series plus [_sum]/[_count]). *)

  val write_prometheus : string -> unit

  val stats_table : unit -> string
  (** Human-readable table of every instrument (the [--stats] view). *)
end
