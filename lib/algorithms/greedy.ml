module I = Mmd.Instance
module B = Prelude.Bitset

type t = {
  assignment : Mmd.Assignment.t;
  last_stream : int option array;
  first_blocked : int option;
  picks : int list;
}

let effective_cap inst u =
  if I.mc inst >= 1 then Float.min (I.utility_cap inst u) (I.capacity inst u 0)
  else I.utility_cap inst u

(* Mutable greedy state. [resid.(u)] is the fractional residual utility
   of user u; [stream_resid.(s)] is the fractional residual utility
   w̄(S) of candidate stream s, maintained incrementally. [assigned] is
   a flat user-major bitset (bit [u * ns + s]): one bit per user-stream
   pair keeps the whole membership table cache-resident where a
   [bool array array] costs a word per pair. *)
type state = {
  inst : I.t;
  ns : int;
  resid : float array;
  stream_resid : float array;
  candidate : bool array;        (* still in C *)
  assigned : B.t;                (* user × stream, flat *)
  last : int option array;
  mutable budget_left : float;
  mutable picks_rev : int list;
  mutable first_blocked : int option;
}

let init inst =
  let ns = I.num_streams inst and nu = I.num_users inst in
  let resid = Array.init nu (fun u -> Float.max 0. (effective_cap inst u)) in
  (* Each per-stream sum is an independent pure fold over that stream's
     interested users, so fanning them across the pool preserves the
     sequential result bit for bit. *)
  let stream_resid =
    Prelude.Pool.float_init ~chunk:128 ns (fun s ->
        Array.fold_left
          (fun acc u -> acc +. Float.min (I.utility inst u s) resid.(u))
          0. (I.interested_users inst s))
  in
  { inst;
    ns;
    resid;
    stream_resid;
    candidate = Array.make ns true;
    assigned = B.create (nu * ns);
    last = Array.make nu None;
    budget_left = I.budget inst 0;
    picks_rev = [];
    first_blocked = None }

(* Assign stream s to every user with positive residual utility for it,
   updating residuals of users and of the remaining candidate streams. *)
let assign st s =
  let inst = st.inst in
  st.candidate.(s) <- false;
  st.stream_resid.(s) <- 0.;
  st.budget_left <- st.budget_left -. I.server_cost inst s 0;
  st.picks_rev <- s :: st.picks_rev;
  Array.iter
    (fun u ->
      (* [base + s] indices stay inside [0, nu * ns) by construction
         (u and s come from the instance), so the unchecked accessors
         are safe here and keep the per-pair cost at a mask and a
         shift. *)
      let base = u * st.ns in
      if st.resid.(u) > 0. && not (B.unsafe_get st.assigned (base + s))
      then begin
        B.unsafe_set st.assigned (base + s);
        st.last.(u) <- Some s;
        let old_resid = st.resid.(u) in
        let new_resid = Float.max 0. (old_resid -. I.utility inst u s) in
        st.resid.(u) <- new_resid;
        Array.iter
          (fun s' ->
            if st.candidate.(s') && not (B.unsafe_get st.assigned (base + s'))
            then begin
              let w = I.utility inst u s' in
              let updated =
                st.stream_resid.(s')
                +. Float.min w new_resid -. Float.min w old_resid
              in
              (* The incremental sum drifts by ~1e-16 per update; when
                 the true residual is 0 that drift would make the
                 greedy "pick" a stream that serves nobody. Collapse
                 anything below the noise floor to exactly 0. *)
              let noise =
                Prelude.Float_ops.default_eps
                *. (1. +. I.stream_total_utility inst s')
              in
              st.stream_resid.(s') <-
                (if Float.abs updated <= noise then 0. else updated)
            end)
          (I.interesting_streams inst u)
      end)
    (I.interested_users inst s)

(* Compare cost-effectiveness w̄(s)/c(s) without dividing: s beats s'
   when w·c' > w'·c; zero-cost streams have infinite effectiveness. *)
let better_than ~w ~c ~w' ~c' =
  if c = 0. && c' = 0. then w > w'
  else if c = 0. then w > 0.
  else if c' = 0. then false
  else w *. c' > w' *. c

let best_candidate st =
  let inst = st.inst in
  let best = ref (-1) in
  let best_w = ref 0. and best_c = ref 0. in
  for s = 0 to I.num_streams inst - 1 do
    if st.candidate.(s) then begin
      let w = st.stream_resid.(s) and c = I.server_cost inst s 0 in
      if !best < 0 || better_than ~w ~c ~w':!best_w ~c':!best_c then begin
        best := s;
        best_w := w;
        best_c := c
      end
    end
  done;
  if !best < 0 then None else Some (!best, !best_w)

(* Selection rounds = candidate-scan iterations of the marginal loop;
   tallied locally and flushed once per run so the scan itself stays
   allocation- and atomic-free. *)
let m_rounds = lazy (Obs.Metrics.counter "greedy_select_rounds_total")
let m_picks = lazy (Obs.Metrics.counter "greedy_picks_total")

let run_impl ~initial_streams inst =
  if I.m inst <> 1 then invalid_arg "Greedy.run: requires m = 1";
  if I.mc inst > 1 then invalid_arg "Greedy.run: requires mc <= 1";
  let st = init inst in
  List.iter
    (fun s ->
      if s < 0 || s >= I.num_streams inst then
        invalid_arg "Greedy.run: initial stream out of range";
      if st.candidate.(s) then begin
        if not (Prelude.Float_ops.leq (I.server_cost inst s 0) st.budget_left)
        then invalid_arg "Greedy.run: initial streams exceed the budget";
        assign st s
      end)
    initial_streams;
  let rounds = ref 0 in
  let rec loop () =
    incr rounds;
    match best_candidate st with
    | None -> ()
    | Some (_, w) when w <= 0. -> () (* nothing left to gain *)
    | Some (s, _) ->
        if Prelude.Float_ops.leq (I.server_cost inst s 0) st.budget_left then
          assign st s
        else begin
          if st.first_blocked = None then st.first_blocked <- Some s;
          st.candidate.(s) <- false
        end;
        loop ()
  in
  loop ();
  Obs.Metrics.inc ~n:!rounds (Lazy.force m_rounds);
  Obs.Metrics.inc
    ~n:(List.length st.picks_rev)
    (Lazy.force m_picks);
  { assignment =
      Mmd.Assignment.of_bitset ~num_users:(I.num_users inst) ~num_streams:st.ns
        st.assigned;
    last_stream = st.last;
    first_blocked = st.first_blocked;
    picks = List.rev st.picks_rev }

let run ?(initial_streams = []) inst =
  Obs.Span.with_ ~name:"greedy.run" (fun () -> run_impl ~initial_streams inst)
