module I = Mmd.Instance
module A = Mmd.Assignment

let best_single inst =
  let score s =
    Array.fold_left
      (fun acc u ->
        acc +. Float.min (I.utility inst u s) (I.utility_cap inst u))
      0.
      (I.interested_users inst s)
  in
  (* Deterministic parallel argmax: lowest index wins ties, matching
     the sequential strict-improvement scan. *)
  match Prelude.Pool.argmax_float ~n:(I.num_streams inst) score with
  | Some (s, value) when value > 0. -> A.of_range inst [ s ]
  | _ -> A.empty ~num_users:(I.num_users inst)

let pick_best inst candidates =
  let scored = List.map (fun a -> (A.utility inst a, a)) candidates in
  match scored with
  | [] -> A.empty ~num_users:(I.num_users inst)
  | (w0, a0) :: rest ->
      let _, best =
        List.fold_left
          (fun (bw, ba) (w, a) -> if w > bw then (w, a) else (bw, ba))
          (w0, a0) rest
      in
      best

let run_augmented inst =
  let greedy = Greedy.run inst in
  pick_best inst [ greedy.assignment; best_single inst ]

(* Theorem 2.8: A1(u) = A(u) \ {last stream of u}; A2(u) = {last}. *)
let split_last (greedy : Greedy.t) =
  let is_last u s =
    match greedy.last_stream.(u) with Some l -> l = s | None -> false
  in
  let a1 = A.restrict_users greedy.assignment (fun u s -> not (is_last u s)) in
  let a2 = A.restrict_users greedy.assignment is_last in
  (a1, a2)

let run_feasible inst =
  let greedy = Greedy.run inst in
  let a1, a2 = split_last greedy in
  let candidates = [ a1; a2; best_single inst ] in
  (* The raw greedy output is only semi-feasible in general, but when
     it happens to be feasible it dominates its own split. *)
  let candidates =
    if A.is_feasible inst greedy.assignment then
      greedy.assignment :: candidates
    else candidates
  in
  pick_best inst candidates
