module I = Mmd.Instance
module A = Mmd.Assignment

let zero_load inst u s =
  let zero = ref true in
  for j = 0 to I.mc inst - 1 do
    if I.load inst u s j > 0. then zero := false
  done;
  !zero

let add_free_pairs inst a =
  let ns = I.num_streams inst in
  (* One flat membership bitset instead of a per-add functional copy:
     the repeated [assigns] list scans and O(users) array copies this
     loop used to do collapse into O(1) bit tests and sets. *)
  let bits = A.to_bitset ~num_streams:ns a in
  let changed = ref false in
  List.iter
    (fun s ->
      Array.iter
        (fun u ->
          let i = (u * ns) + s in
          if (not (Prelude.Bitset.get bits i)) && zero_load inst u s then begin
            Prelude.Bitset.set bits i;
            changed := true
          end)
        (I.interested_users inst s))
    (A.range a);
  if !changed then
    A.of_bitset ~num_users:(I.num_users inst) ~num_streams:ns bits
  else a

let full_pipeline ?(unit_solver = Greedy_fixed.run_feasible) inst =
  let reduced = Mmd_reduce.to_smd inst in
  let smd_solution = Skew_reduce.run ~solver:unit_solver reduced.instance in
  let lifted = Mmd_reduce.lift reduced smd_solution in
  add_free_pairs inst lifted

(* The worst-case-safe pipeline can lose to simple order heuristics on
   easy instances (its decomposition stages discard streams a direct
   admission pass would keep). [best_of] runs the guaranteed pipeline
   alongside cheap feasible heuristics and returns the best — keeping
   the Theorem 1.1 guarantee while recovering average-case value. *)
let admit_by_order inst order =
  let m = I.m inst and mc = I.mc inst in
  let used = Array.make m 0. in
  let cap_used =
    Array.init (I.num_users inst) (fun _ -> Array.make mc 0.)
  in
  let sets = Array.make (I.num_users inst) [] in
  Array.iter
    (fun s ->
      let server_ok = ref true in
      for i = 0 to m - 1 do
        if
          not
            (Prelude.Float_ops.leq
               (used.(i) +. I.server_cost inst s i)
               (I.budget inst i))
        then server_ok := false
      done;
      if !server_ok then begin
        let takers =
          Array.to_list (I.interested_users inst s)
          |> List.filter (fun u ->
                 let ok = ref true in
                 for j = 0 to mc - 1 do
                   if
                     not
                       (Prelude.Float_ops.leq
                          (cap_used.(u).(j) +. I.load inst u s j)
                          (I.capacity inst u j))
                   then ok := false
                 done;
                 !ok)
        in
        if takers <> [] then begin
          for i = 0 to m - 1 do
            used.(i) <- used.(i) +. I.server_cost inst s i
          done;
          List.iter
            (fun u ->
              sets.(u) <- s :: sets.(u);
              for j = 0 to mc - 1 do
                cap_used.(u).(j) <- cap_used.(u).(j) +. I.load inst u s j
              done)
            takers
        end
      end)
    order;
  A.of_sets sets

let best_of inst =
  let by_utility () =
    let order = Array.init (I.num_streams inst) Fun.id in
    Array.sort
      (fun s1 s2 ->
        compare
          (I.stream_total_utility inst s2)
          (I.stream_total_utility inst s1))
      order;
    admit_by_order inst order
  in
  (* The heuristics are independent whole-solver runs: fan them out,
     then keep the first strict maximum in the fixed candidate order,
     exactly as the sequential fold did. *)
  let candidates =
    Prelude.Pool.parallel_map
      (fun solve -> solve ())
      [| (fun () -> full_pipeline inst);
         (fun () -> Online_allocate.run_offline inst);
         (fun () -> by_utility ()) |]
  in
  Array.fold_left
    (fun (bw, ba) a ->
      let w = A.utility inst a in
      if w > bw then (w, a) else (bw, ba))
    (-1., A.empty ~num_users:(I.num_users inst))
    candidates
  |> snd

type algorithm =
  | Greedy_basic
  | Greedy_fixed
  | Sviridenko
  | Skew_classify
  | Pipeline
  | Online
  | Best_of

let algorithm_names =
  [ ("greedy", Greedy_basic);
    ("fixed-greedy", Greedy_fixed);
    ("sviridenko", Sviridenko);
    ("skew-classify", Skew_classify);
    ("pipeline", Pipeline);
    ("online", Online);
    ("best-of", Best_of) ]

let run algorithm inst =
  match algorithm with
  | Greedy_basic -> (Greedy.run inst).assignment
  | Greedy_fixed -> Greedy_fixed.run_feasible inst
  | Sviridenko -> Sviridenko.run_feasible inst
  | Skew_classify -> Skew_reduce.run inst
  | Pipeline -> full_pipeline inst
  | Online -> Online_allocate.run_offline inst
  | Best_of -> best_of inst
