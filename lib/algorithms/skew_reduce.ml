module I = Mmd.Instance
module A = Mmd.Assignment

let check inst =
  if I.m inst <> 1 then invalid_arg "Skew_reduce: requires m = 1";
  if I.mc inst > 1 then invalid_arg "Skew_reduce: requires mc <= 1"

(* Band index (0-based) of ratio r >= 1: band i holds ratios in
   [2^i, 2^(i+1)); the paper's 1-based band i+1. *)
let band_of_ratio r = int_of_float (Prelude.Float_ops.log2 r)

let sub_instances inst =
  check inst;
  if I.mc inst = 0 then [| inst |]
  else begin
    let inst = Mmd.Skew.normalize_loads inst in
    let alpha = Mmd.Skew.local_skew inst in
    let bands = 1 + band_of_ratio alpha in
    let ns = I.num_streams inst and nu = I.num_users inst in
    let server_cost =
      Array.init ns (fun s -> [| I.server_cost inst s 0 |])
    in
    let budget = [| I.budget inst 0 |] in
    let load =
      Array.init nu (fun u ->
          Array.init ns (fun s -> [| I.load inst u s 0 |]))
    in
    let capacity = Array.init nu (fun u -> [| I.capacity inst u 0 |]) in
    (* Bands are independent projections of the same read-only
       instance, so both building and (in [run]) solving them fan out
       across the pool. *)
    Prelude.Pool.init ~chunk:1 bands (fun band ->
        let utility =
          Array.init nu (fun u ->
              Array.init ns (fun s ->
                  let w = I.utility inst u s and k = I.load inst u s 0 in
                  if w <= 0. || k <= 0. then 0.
                  else begin
                    (* Guard against a ratio landing exactly on the top
                       boundary through float rounding. *)
                    let b = min (band_of_ratio (w /. k)) (bands - 1) in
                    if b = band then k else 0.
                  end))
        in
        let utility_cap = Array.init nu (fun u -> I.capacity inst u 0) in
        I.create
          ~name:(Printf.sprintf "%s/band%d" (I.name inst) band)
          ~server_cost ~budget ~load ~capacity ~utility ~utility_cap ())
  end

let run ?(solver = Greedy_fixed.run_feasible) inst =
  check inst;
  let subs = sub_instances inst in
  (* Solve the unit-skew classes concurrently. [parallel_map] keeps
     band order, and the strict fold below keeps the first maximum, so
     the winner is the one the sequential loop would return. *)
  let solved =
    Prelude.Pool.parallel_map
      (fun sub ->
        let a = solver sub in
        (A.utility inst a, a))
      subs
  in
  let best = ref (A.empty ~num_users:(I.num_users inst)) in
  let best_value = ref (-1.) in
  Array.iter
    (fun (value, a) ->
      if value > !best_value then begin
        best := a;
        best_value := value
      end)
    solved;
  !best
