module I = Mmd.Instance
module A = Mmd.Assignment

let check_preconditions inst max_enum_size =
  if I.m inst <> 1 then invalid_arg "Sviridenko: requires m = 1";
  if I.mc inst > 1 then invalid_arg "Sviridenko: requires mc <= 1";
  if max_enum_size < 1 || max_enum_size > 3 then
    invalid_arg "Sviridenko: max_enum_size must be in [1, 3]"

let cost inst s = I.server_cost inst s 0

let fits inst streams =
  let total = List.fold_left (fun acc s -> acc +. cost inst s) 0. streams in
  Prelude.Float_ops.leq total (I.budget inst 0)

(* Stream the budget-feasible subsets of cardinality in [1, k] whose
   smallest element lies in [lo, hi), in lexicographic order, to [f].
   Nothing is materialized: memory stays O(1) per enumeration however
   large the O(|S|^k) subset space gets, and slicing on the first
   element gives the pool a deterministic work grid. *)
let iter_feasible_subsets inst k ~lo ~hi f =
  let ns = I.num_streams inst in
  for a = lo to hi - 1 do
    if fits inst [ a ] then begin
      f [ a ];
      if k >= 2 then
        for b = a + 1 to ns - 1 do
          if fits inst [ a; b ] then begin
            f [ a; b ];
            if k >= 3 then
              for c = b + 1 to ns - 1 do
                if fits inst [ a; b; c ] then f [ a; b; c ]
              done
          end
        done
    end
  done

(* Candidates from one subset: a feasible set of size exactly k is
   completed greedily and refined; smaller sets stand as-is. *)
let subset_candidates inst max_enum_size refine streams =
  if List.length streams = max_enum_size then
    refine (Greedy.run ~initial_streams:streams inst)
  else [ Feasible_repair.trim_caps inst (A.of_range inst streams) ]

let fold_best inst acc candidates =
  List.fold_left
    (fun (bw, ba) a ->
      let w = A.utility inst a in
      if w > bw then (w, Some a) else (bw, ba))
    acc candidates

(* Best candidate over base solutions plus every enumerated subset.
   Subsets are scored as they are produced, chunk-locally, and the
   chunk winners combine in ascending chunk order with a strict
   comparison — so the winner is exactly the sequential scan's first
   strict maximum, at any domain count. *)
let best_enumerated inst max_enum_size refine base =
  let ns = I.num_streams inst in
  let base_best = fold_best inst (-1., None) base in
  let local lo hi =
    let acc = ref (-1., None) in
    iter_feasible_subsets inst max_enum_size ~lo ~hi (fun streams ->
        acc :=
          fold_best inst !acc (subset_candidates inst max_enum_size refine streams));
    !acc
  in
  let best =
    match
      Prelude.Pool.reduce_chunks ~chunk:4 ~local
        ~combine:(fun (bw, ba) (bw', ba') ->
          if bw' > bw then (bw', ba') else (bw, ba))
        ns
    with
    | Some (bw, ba) when bw > fst base_best -> ba
    | _ -> snd base_best
  in
  match best with
  | None -> A.empty ~num_users:(I.num_users inst)
  | Some a -> a

let run_augmented ?(max_enum_size = 3) inst =
  check_preconditions inst max_enum_size;
  best_enumerated inst max_enum_size
    (fun (g : Greedy.t) -> [ g.assignment ])
    [ A.empty ~num_users:(I.num_users inst);
      (Greedy.run inst).assignment ]

let run_feasible ?(max_enum_size = 3) inst =
  check_preconditions inst max_enum_size;
  let refine (g : Greedy.t) =
    let a1, a2 = Greedy_fixed.split_last g in
    if A.is_feasible inst g.assignment then [ g.assignment; a1; a2 ]
    else [ a1; a2 ]
  in
  best_enumerated inst max_enum_size refine
    (Greedy_fixed.best_single inst
    :: A.empty ~num_users:(I.num_users inst)
    :: refine (Greedy.run inst))
