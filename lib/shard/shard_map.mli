(** Constraint-driven shard placement, vbucket style.

    A shard map fixes how a user population is spread over [N] engine
    shards, each shard tagged with the rack (or zone, or head-end
    site) it lives on. The design follows the Couchbase vbucket map
    planner: placement is the solution to explicit constraints rather
    than a hash —

    - {b balance}: after placing [U] users, every shard holds either
      [⌊U/N⌋] or [⌊U/N⌋+1] of them;
    - {b spread}: consecutive placements land on distinct tags
      whenever the tag multiset allows it, so racks fill evenly and a
      rack failure takes out a near-minimal slice of any prefix of the
      population;
    - {b determinism}: the map is a pure function of [(seed, tags)] —
      two routers built from the same topology place identically,
      which is what makes sharded runs reproducible bit-for-bit.

    Under churn the balance constraint erodes; {!rebalance} computes
    the bounded repair: at most [k] user moves toward balance per
    epoch, each move executed by the router as an ordinary
    leave/join {!Engine.Delta} pair. *)

type t

val create : ?seed:int -> tags:string array -> unit -> t
(** [create ~tags ()] builds the map for [Array.length tags] shards,
    shard [i] living on rack [tags.(i)]. [seed] (default 0) only
    shuffles placement order {e within} a tag, so topology changes
    that keep the tag multiset intact keep the same cross-tag
    interleaving. @raise Invalid_argument on an empty topology. *)

val num_shards : t -> int
val seed : t -> int

val tag : t -> int -> string
(** The rack/zone tag of a shard. *)

val order : t -> int array
(** The placement interleave: a permutation of [0..N-1]; user rank
    [r] is dealt to shard [(order t).(r mod N)]. Fresh copy. *)

val plan : t -> users:int -> int array
(** [plan t ~users] assigns each user rank its shard by dealing
    round-robin over {!order} — the initial placement satisfying the
    balance and spread constraints by construction. *)

val route : t -> counts:int array -> int
(** Balance-preserving choice for one arriving user given the current
    per-shard populations: the first shard in interleave order with
    the minimal count. When counts are balanced this walks the same
    round-robin as {!plan}. *)

val targets : t -> counts:int array -> int array
(** The balanced population the map steers toward given the current
    total: every entry is [⌊U/N⌋] or [⌊U/N⌋+1], and the shards
    currently holding the most users keep the extra unit (ties broken
    by interleave position) so the repair distance is minimal. *)

type move = { from_shard : int; to_shard : int }

val rebalance : t -> counts:int array -> k:int -> move list
(** At most [k] single-user moves from over- to under-target shards
    (against {!targets}), pairing the largest surplus with the largest
    deficit first, ties broken by interleave position. Applying all
    returned moves to [counts] and calling again eventually returns
    [[]] — the fixpoint is exact balance. Deterministic. *)
