module C = Engine.Controller
module V = Engine.View
module D = Engine.Delta
module I = Mmd.Instance

type budget_split = Even | Demand

(* A shard is either one bare controller or a whole replica group
   (primary + followers behind WAL shipping). Every access to "the
   shard's controller" goes through [ctrl], which in replicated mode
   resolves to the group's current primary — so a failover inside a
   shard is invisible to the routing tables. *)
type backend = Plain of C.t array | Replicated of Replica.Group.t array

type t = {
  map : Shard_map.t;
  split : budget_split;
  mirror : V.t;
  backend : backend;
  wals : Engine.Wal.writer array option;
  (* Global slot id -> owner. The mirror allocates global ids with the
     unsharded engine's exact slot discipline, so these arrays are
     dense and grow with the mirror. *)
  mutable shard_of : int array;
  mutable local_of : int array;
  counts : int array;
  demand : float array;
  mutable certificates : int;
  mutable certified_ratio : float;
}

let ctrl t i =
  match t.backend with
  | Plain cs -> cs.(i)
  | Replicated gs -> Replica.Group.primary gs.(i)

let shard_label i = [ ("shard", string_of_int i) ]

(* The shard's initial world: the full catalog under its budget share,
   plus the users dealt to it, in ascending global id order. Costs
   that undercut the share are clamped down to it — the same clamp the
   view applies on any budget shrink. *)
let sub_instance inst ~assign ~shard ~share =
  let ns = I.num_streams inst and m = I.m inst and mc = I.mc inst in
  let users = ref [] in
  Array.iteri (fun u s -> if s = shard then users := u :: !users) assign;
  let users = Array.of_list (List.rev !users) in
  let nu = Array.length users in
  I.create
    ~name:(Printf.sprintf "%s/shard-%d" (I.name inst) shard)
    ~mc
    ~server_cost:
      (Array.init ns (fun s ->
           Array.init m (fun i -> Float.min (I.server_cost inst s i) share.(i))))
    ~budget:(Array.copy share)
    ~load:
      (Array.init nu (fun v ->
           Array.init ns (fun s ->
               Array.init mc (fun j -> I.load inst users.(v) s j))))
    ~capacity:
      (Array.init nu (fun v ->
           Array.init mc (fun j -> I.capacity inst users.(v) j)))
    ~utility:
      (Array.init nu (fun v ->
           Array.init ns (fun s -> I.utility inst users.(v) s)))
    ~utility_cap:(Array.init nu (fun v -> I.utility_cap inst users.(v)))
    ()

let slot_demand view l =
  List.fold_left (fun acc s -> acc +. V.utility view l s) 0. (V.interests view l)

let create ?(policy = C.Every 64) ?(split = Even) ?wal_dir ?replicas
    ?heartbeat_every ~map inst =
  let n = Shard_map.num_shards map in
  let nu = I.num_users inst in
  let assign = Shard_map.plan map ~users:nu in
  (* Initial budget shares are even; [resplit_budgets] switches a
     Demand router to the skew-aware split once demand is visible. *)
  let share =
    Array.init (I.m inst) (fun i -> I.budget inst i /. float_of_int n)
  in
  let wals =
    Option.map
      (fun dir ->
        (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        Array.init n (fun i ->
            Engine.Wal.append_file (Filename.concat dir
               (Printf.sprintf "shard-%d.wal" i))))
      wal_dir
  in
  let backend =
    match replicas with
    | None | Some 0 ->
        Plain
          (Array.init n (fun i ->
               C.create ~policy ~labels:(shard_label i)
                 (sub_instance inst ~assign ~shard:i ~share)))
    | Some r ->
        let config =
          match heartbeat_every with
          | None -> Replica.Group.default_config
          | Some hb ->
              { Replica.Group.default_config with
                heartbeat_every = max 1 hb;
                heartbeat_timeout =
                  max (3 * max 1 hb)
                    Replica.Group.default_config.heartbeat_timeout }
        in
        Replicated
          (Array.init n (fun i ->
               Replica.Group.create ~policy ~config ~labels:(shard_label i)
                 ?wal:(Option.map (fun ws -> ws.(i)) wals)
                 ~replicas:r
                 (sub_instance inst ~assign ~shard:i ~share)))
  in
  let t =
    { map;
      split;
      mirror = V.of_instance inst;
      backend;
      wals;
      shard_of = Array.make (max 1 nu) (-1);
      local_of = Array.make (max 1 nu) (-1);
      counts = Array.make n 0;
      demand = Array.make n 0.;
      certificates = 0;
      certified_ratio = 0. }
  in
  (* Global id u landed on shard assign.(u) at local id = its rank
     among that shard's users — the order sub_instance listed them. *)
  let next_local = Array.make n 0 in
  Array.iteri
    (fun u s ->
      t.shard_of.(u) <- s;
      t.local_of.(u) <- next_local.(s);
      next_local.(s) <- next_local.(s) + 1;
      t.counts.(s) <- t.counts.(s) + 1;
      t.demand.(s) <- t.demand.(s) +. slot_demand (C.view (ctrl t s)) t.local_of.(u))
    assign;
  t

let num_shards t =
  match t.backend with
  | Plain cs -> Array.length cs
  | Replicated gs -> Array.length gs

let map t = t.map

let ensure_global t g =
  let len = Array.length t.shard_of in
  if g >= len then begin
    let len' = max (g + 1) (2 * len) in
    let grow a =
      let a' = Array.make len' (-1) in
      Array.blit a 0 a' 0 len;
      a'
    in
    t.shard_of <- grow t.shard_of;
    t.local_of <- grow t.local_of
  end

let wal_append ?flush t shard d =
  match t.wals with
  | None -> ()
  | Some ws -> ignore (Engine.Wal.append_tee ?flush ws.(shard) d)

(* Every controller apply in the routing paths is paired with a WAL
   append of the same local delta; in replicated mode both happen
   inside the group (primary apply, tee to its writer, ship to
   followers). *)
let shard_apply ?flush t i d =
  match t.backend with
  | Replicated gs -> Replica.Group.apply ?flush gs.(i) d
  | Plain cs ->
      let applied = C.apply cs.(i) d in
      wal_append ?flush t i d;
      applied

let budget_shares t b =
  let n = num_shards t in
  let even () =
    Array.init n (fun _ -> Array.map (fun x -> x /. float_of_int n) b)
  in
  match t.split with
  | Even -> even ()
  | Demand ->
      (* The incremental demand accumulator can hold a tiny negative
         residue after a shard empties (float cancellation); clamp so
         no share ever goes negative. *)
      let d = Array.map (Float.max 0.) t.demand in
      let total = Array.fold_left ( +. ) 0. d in
      if total <= 0. then even ()
      else
        Array.init n (fun i ->
            let w = d.(i) /. total in
            Array.map (fun x -> if x = Float.infinity then x else x *. w) b)

let apply_opt ?flush t (d : D.t) : V.applied =
  match d with
  | D.User_join _ ->
      let applied = V.apply t.mirror d in
      let g = match applied with V.Joined g -> g | _ -> assert false in
      let shard = Shard_map.route t.map ~counts:t.counts in
      let la = shard_apply ?flush t shard d in
      let l = match la with V.Joined l -> l | _ -> assert false in
      ensure_global t g;
      t.shard_of.(g) <- shard;
      t.local_of.(g) <- l;
      t.counts.(shard) <- t.counts.(shard) + 1;
      t.demand.(shard) <-
        t.demand.(shard) +. slot_demand (C.view (ctrl t shard)) l;
      applied
  | D.User_leave g ->
      if g < 0 || g >= Array.length t.shard_of || t.shard_of.(g) < 0 then
        invalid_arg "Router.apply: leave of an inactive slot";
      let shard = t.shard_of.(g) in
      let l = t.local_of.(g) in
      let du = slot_demand (C.view (ctrl t shard)) l in
      let applied = V.apply t.mirror d in
      ignore (shard_apply ?flush t shard (D.User_leave l));
      t.shard_of.(g) <- -1;
      t.local_of.(g) <- -1;
      t.counts.(shard) <- t.counts.(shard) - 1;
      t.demand.(shard) <- t.demand.(shard) -. du;
      applied
  | D.Stream_cost_change _ ->
      let applied = V.apply t.mirror d in
      for i = 0 to num_shards t - 1 do
        ignore (shard_apply ?flush t i d)
      done;
      applied
  | D.Budget_resize b ->
      let applied = V.apply t.mirror d in
      let shares = budget_shares t b in
      Array.iteri
        (fun i share -> ignore (shard_apply ?flush t i (D.Budget_resize share)))
        shares;
      applied

let apply t d = apply_opt t d

let flush_wals t =
  (match t.wals with
  | Some ws -> Array.iter Engine.Wal.flush_writer ws
  | None -> ());
  match t.backend with
  | Replicated gs -> Array.iter Replica.Group.flush_wal gs
  | Plain _ -> ()

(* Routing is inherently sequential — the mirror's slot allocation,
   the least-loaded routing choice and the ownership tables all depend
   on every earlier delta — so the batch routes records one at a time
   and amortizes the per-shard WAL OS flushes over the batch. Bytes on
   disk (and replication frames shipped) are identical to the
   one-at-a-time path. *)
let apply_batch t ds =
  List.iter (fun d -> ignore (apply_opt ~flush:false t d)) ds;
  flush_wals t

let apply_all t ds = List.iter (fun d -> ignore (apply t d)) ds

let resplit_budgets t =
  let b = Array.init (V.m t.mirror) (V.budget t.mirror) in
  let shares = budget_shares t b in
  Array.iteri
    (fun i share -> ignore (shard_apply t i (D.Budget_resize share)))
    shares

(* Shards plan over disjoint sub-worlds, so their replans are
   independent and run concurrently on the domain pool — each shard's
   own parallel planner stages then run inline (nested pool calls
   degrade to sequential), keeping every shard's float summation order,
   and therefore every plan, bit-identical to the sequential path. *)
let replan_all t =
  let n = num_shards t in
  ignore
    (Prelude.Pool.parallel_map
       (fun i ->
         C.replan (ctrl t i);
         i)
       (Array.init n Fun.id))

let shard_of_slot t g =
  if g < 0 || g >= Array.length t.shard_of then -1 else t.shard_of.(g)

let counts t = Array.copy t.counts
let demand t = Array.copy t.demand
let controller t i = ctrl t i
let mirror t = t.mirror

(* ---------- Replication surface ---------- *)

let replicated t =
  match t.backend with Replicated _ -> true | Plain _ -> false

let group t i =
  match t.backend with Replicated gs -> Some gs.(i) | Plain _ -> None

let kill_primary t i =
  match t.backend with
  | Replicated gs -> Replica.Group.kill_primary gs.(i)
  | Plain _ -> ()

let fail_over t i =
  match t.backend with
  | Replicated gs -> Replica.Group.fail_over gs.(i)
  | Plain _ -> false

let failovers t =
  match t.backend with
  | Replicated gs ->
      Array.fold_left (fun acc g -> acc + Replica.Group.failovers g) 0 gs
  | Plain _ -> 0

let quiesce_replicas t =
  match t.backend with
  | Replicated gs -> Array.for_all (fun g -> Replica.Group.quiesce g) gs
  | Plain _ -> true

(* One rebalance move: evict the highest global slot on the donor and
   replay its spec into the receiver — two ordinary deltas through the
   shards' apply paths. The mirror and the global id are untouched;
   only the ownership tables change. *)
let move_one t ~from_shard ~to_shard =
  let g = ref (Array.length t.shard_of - 1) in
  while !g >= 0 && t.shard_of.(!g) <> from_shard do
    decr g
  done;
  if !g < 0 then false
  else begin
    let g = !g in
    let l = t.local_of.(g) in
    let from_view = C.view (ctrl t from_shard) in
    let spec = V.user_spec from_view l in
    let du = slot_demand from_view l in
    ignore (shard_apply t from_shard (D.User_leave l));
    let la = shard_apply t to_shard (D.User_join spec) in
    let l' = match la with V.Joined l' -> l' | _ -> assert false in
    t.shard_of.(g) <- to_shard;
    t.local_of.(g) <- l';
    t.counts.(from_shard) <- t.counts.(from_shard) - 1;
    t.counts.(to_shard) <- t.counts.(to_shard) + 1;
    t.demand.(from_shard) <- t.demand.(from_shard) -. du;
    t.demand.(to_shard) <-
      t.demand.(to_shard) +. slot_demand (C.view (ctrl t to_shard)) l';
    true
  end

let rebalance t ~k =
  let moves = Shard_map.rebalance t.map ~counts:t.counts ~k in
  List.fold_left
    (fun n { Shard_map.from_shard; to_shard } ->
      if move_one t ~from_shard ~to_shard then n + 1 else n)
    0 moves

let utility t =
  let acc = ref 0. in
  for i = 0 to num_shards t - 1 do
    acc := !acc +. C.utility (ctrl t i)
  done;
  !acc

(* Replicated shards report through their current primary only:
   follower counters mirror the primary's delta stream, so summing
   over them would multiply every count by the replication factor. *)
let report t =
  let n = num_shards t in
  let rs = Array.init n (fun i -> C.report (ctrl t i)) in
  let sum f = Array.fold_left (fun acc r -> acc + f r) 0 rs in
  let replan_h = Obs.Hist.create () and recovery_h = Obs.Hist.create () in
  for i = 0 to n - 1 do
    let cnt = C.counters (ctrl t i) in
    Obs.Hist.merge_into ~into:replan_h (Engine.Counters.replan_hist cnt);
    Obs.Hist.merge_into ~into:recovery_h (Engine.Counters.recovery_hist cnt)
  done;
  let open Engine.Counters in
  let evals = sum (fun r -> r.evals)
  and eager_equiv = sum (fun r -> r.eager_equiv) in
  { deltas = sum (fun r -> r.deltas);
    joins = sum (fun r -> r.joins);
    leaves = sum (fun r -> r.leaves);
    cost_changes = sum (fun r -> r.cost_changes);
    budget_resizes = sum (fun r -> r.budget_resizes);
    replans = sum (fun r -> r.replans);
    evictions = sum (fun r -> r.evictions);
    evals;
    eager_equiv;
    evals_saved = max 0 (eager_equiv - evals);
    replan_latency = Obs.Hist.to_summary replan_h;
    faults = sum (fun r -> r.faults);
    quarantined = sum (fun r -> r.quarantined);
    recoveries = sum (fun r -> r.recoveries);
    fallbacks = sum (fun r -> r.fallbacks);
    recovery_latency = Obs.Hist.to_summary recovery_h;
    certificates = t.certificates;
    certified_ratio = t.certified_ratio }

(* One certified bound for the whole fleet: every shard emits a sparse
   certificate for its own sub-world (target = its achieved utility),
   and the pieces compose under Checker's partial/compose split — the
   per-user dual terms add across the disjoint populations, while the
   budget duals must be one global vector, taken as the count-weighted
   average of the shards' (any non-negative choice is sound; averaging
   keeps each shard's tuning roughly in force). The composed
   certificate is then re-checked against the mirror — the unsharded
   problem — so the number reported is the independent checker's, not
   a sum of shard claims. With one shard the weight is exactly [1.],
   every float op matches the unsharded [Engine.Certify] path, and the
   bound is bit-identical to it. *)
let certify ?iters t =
  let n = num_shards t in
  let mirror_p = Engine.Certify.problem_of_view t.mirror in
  let shard_certs =
    Array.init n (fun i ->
        let c = ctrl t i in
        let p = Engine.Certify.problem_of_view (C.view c) in
        let cert, stats = Cert.Sparse.emit ?iters ~target:(C.utility c) p in
        (p, cert, stats))
  in
  let m = V.m t.mirror in
  let total = Array.fold_left ( + ) 0 t.counts in
  let lambda =
    Array.init m (fun i ->
        if total = 0 then
          let _, c, _ = shard_certs.(0) in
          c.Cert.Certificate.budget_dual.(i)
        else begin
          let acc = ref 0. in
          for s = 0 to n - 1 do
            let _, c, _ = shard_certs.(s) in
            let w = float_of_int t.counts.(s) /. float_of_int total in
            acc := !acc +. (w *. c.Cert.Certificate.budget_dual.(i))
          done;
          !acc
        end)
  in
  let partials =
    Array.to_list
      (Array.map (fun (p, c, _) -> Cert.Checker.partial p c) shard_certs)
  in
  let bound =
    Cert.Checker.compose ~m ~budget:(V.budget t.mirror)
      ~num_streams:(V.num_streams t.mirror)
      ~server_cost:(V.server_cost t.mirror) ~lambda partials
  in
  (* Reassemble the per-user duals in the mirror's user order: global
     slot -> owning shard -> rank of its local slot among that shard's
     active slots (the order the shard's problem listed its users). *)
  let shard_rank =
    Array.init n (fun i ->
        let slots = V.active_slots (C.view (ctrl t i)) in
        let tbl = Hashtbl.create 64 in
        List.iteri (fun r l -> Hashtbl.replace tbl l r) slots;
        tbl)
  in
  let mirror_slots = Array.of_list (V.active_slots t.mirror) in
  let locate u =
    let g = mirror_slots.(u) in
    let s = t.shard_of.(g) in
    (s, Hashtbl.find shard_rank.(s) t.local_of.(g))
  in
  let nu = Array.length mirror_slots in
  let composed =
    { Cert.Certificate.budget_dual = lambda;
      capacity_dual =
        Array.init nu (fun u ->
            let s, r = locate u in
            let _, c, _ = shard_certs.(s) in
            Array.copy c.Cert.Certificate.capacity_dual.(r));
      cap_dual =
        Array.init nu (fun u ->
            let s, r = locate u in
            let _, c, _ = shard_certs.(s) in
            c.Cert.Certificate.cap_dual.(r));
      bound }
  in
  match Cert.Checker.check mirror_p composed with
  | Cert.Checker.Rejected msg -> Error msg
  | Cert.Checker.Certified { bound; repaired } ->
      let achieved = utility t in
      let ratio = Engine.Certify.ratio_of ~achieved ~bound in
      t.certificates <- t.certificates + 1;
      t.certified_ratio <- ratio;
      Engine.Counters.set_certified_gauge ratio;
      Ok
        ( { Engine.Certify.bound;
            achieved;
            ratio;
            repaired;
            iterations =
              Array.fold_left
                (fun acc (_, _, s) -> acc + s.Cert.Sparse.iterations)
                0 shard_certs },
          composed )

(* Lazy mode: identical plan to eager by construction (tie-break to
   the lower stream id), and the only affordable mode at 1M users —
   eager re-evaluates every live candidate per admission. *)
let global_scratch t = C.scratch ~mode:Engine.Planner.Lazy t.mirror

let close t =
  match t.wals with
  | None -> ()
  | Some ws -> Array.iter Engine.Wal.close ws
