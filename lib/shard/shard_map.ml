(* Placement = constraints, not hashing (vbucket style). The whole map
   reduces to one permutation of the shards — the interleave — chosen
   so that dealing users round-robin over it satisfies balance (counts
   within one of each other at every prefix) and tag spread
   (consecutive positions on distinct racks whenever the tag multiset
   admits it: the greedy most-remaining-first interleave achieves the
   scheduling-with-cooldown bound). *)

type t = { seed : int; tags : string array; order : int array }

type move = { from_shard : int; to_shard : int }

let interleave ~seed ~(tags : string array) =
  let n = Array.length tags in
  (* Group shard ids by tag: tags in sorted order, ids ascending, then
     a seeded Fisher–Yates inside each group (one split per group, in
     tag order, so the shuffle of one rack is independent of the
     others' sizes). *)
  let by_tag = Hashtbl.create 8 in
  Array.iteri
    (fun i tag ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_tag tag) in
      Hashtbl.replace by_tag tag (i :: prev))
    tags;
  let groups =
    Hashtbl.fold (fun tag ids acc -> (tag, ids) :: acc) by_tag []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (tag, ids) ->
           (tag, Array.of_list (List.rev ids) (* ascending *)))
  in
  let rng = Prelude.Rng.create seed in
  let groups =
    List.map
      (fun (tag, ids) ->
        let r = Prelude.Rng.split rng in
        Prelude.Rng.shuffle r ids;
        (tag, ids, ref 0))
      groups
  in
  (* Greedy interleave: always draw from the tag with the most
     remaining shards, never the previous tag unless it is the only
     one left; ties by tag name. Most-remaining-first guarantees no
     adjacent repeat whenever some arrangement avoids one. *)
  let order = Array.make n 0 in
  let prev = ref None in
  for pos = 0 to n - 1 do
    let best = ref None in
    List.iter
      (fun (tag, ids, next) ->
        let remaining = Array.length ids - !next in
        if remaining > 0 && !prev <> Some tag then
          match !best with
          | Some (_, _, bnext, bids) when Array.length bids - !bnext >= remaining
            ->
              ()
          | _ -> best := Some (tag, ids, next, ids))
      groups;
    (match !best with
    | None ->
        (* Only the previous tag has shards left. *)
        List.iter
          (fun (tag, ids, next) ->
            if !next < Array.length ids && !best = None then
              best := Some (tag, ids, next, ids))
          groups
    | Some _ -> ());
    match !best with
    | None -> assert false
    | Some (tag, ids, next, _) ->
        order.(pos) <- ids.(!next);
        incr next;
        prev := Some tag
  done;
  order

let create ?(seed = 0) ~tags () =
  if Array.length tags = 0 then invalid_arg "Shard_map.create: no shards";
  let tags = Array.copy tags in
  { seed; tags; order = interleave ~seed ~tags }

let num_shards t = Array.length t.tags
let seed t = t.seed

let tag t i =
  if i < 0 || i >= num_shards t then
    invalid_arg "Shard_map.tag: shard out of range";
  t.tags.(i)

let order t = Array.copy t.order

let plan t ~users =
  if users < 0 then invalid_arg "Shard_map.plan: negative population";
  let n = num_shards t in
  Array.init users (fun r -> t.order.(r mod n))

let check_counts t counts =
  if Array.length counts <> num_shards t then
    invalid_arg "Shard_map: counts arity <> num_shards";
  Array.iter
    (fun c -> if c < 0 then invalid_arg "Shard_map: negative count")
    counts

let route t ~counts =
  check_counts t counts;
  let best = ref t.order.(0) in
  Array.iter (fun s -> if counts.(s) < counts.(!best) then best := s) t.order;
  !best

(* Interleave position of each shard — the deterministic tiebreak. *)
let positions t =
  let pos = Array.make (num_shards t) 0 in
  Array.iteri (fun p s -> pos.(s) <- p) t.order;
  pos

let targets t ~counts =
  check_counts t counts;
  let n = num_shards t in
  let total = Array.fold_left ( + ) 0 counts in
  let lo = total / n and extras = total mod n in
  let pos = positions t in
  let ranked = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      match compare counts.(b) counts.(a) with
      | 0 -> compare pos.(a) pos.(b)
      | c -> c)
    ranked;
  let target = Array.make n lo in
  for i = 0 to extras - 1 do
    target.(ranked.(i)) <- lo + 1
  done;
  target

let rebalance t ~counts ~k =
  if k < 0 then invalid_arg "Shard_map.rebalance: negative k";
  let target = targets t ~counts in
  let surplus = Array.mapi (fun s c -> c - target.(s)) counts in
  (* Pair the largest surplus with the largest deficit, one user at a
     time; iterating candidates in interleave order with a strict
     comparison keeps ties deterministic. *)
  let pick want_surplus =
    let best = ref (-1) in
    Array.iter
      (fun s ->
        let v = if want_surplus then surplus.(s) else -surplus.(s) in
        let b = !best in
        if v > 0 && (b < 0 || v > abs surplus.(b)) then best := s)
      t.order;
    !best
  in
  let moves = ref [] in
  let moved = ref 0 in
  let continue = ref true in
  while !moved < k && !continue do
    let donor = pick true and recv = pick false in
    if donor < 0 || recv < 0 then continue := false
    else begin
      surplus.(donor) <- surplus.(donor) - 1;
      surplus.(recv) <- surplus.(recv) + 1;
      moves := { from_shard = donor; to_shard = recv } :: !moves;
      incr moved
    end
  done;
  List.rev !moves
