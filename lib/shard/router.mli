(** The multi-head-end router: N independent engine shards behind one
    delta stream.

    Each shard is a full existing stack — {!Engine.Controller} with
    its view, planner, {!Engine.Counters} (labeled [shard="i"] in the
    {!Obs.Metrics} registry) and optional {!Engine.Wal} — so per-shard
    crash recovery and bit-exact determinism come for free: a shard's
    WAL replays into a fresh controller exactly as the unsharded
    engine's does.

    The router owns a {e mirror} view applying every delta unsharded.
    The mirror is never planned over; it exists to (a) allocate global
    slot ids with exactly the unsharded engine's slot discipline, so
    [leave <slot>] deltas recorded against an unsharded run route
    correctly, and (b) provide the single-global-solve reference
    ({!global_scratch}) that the cross-shard utility loss is measured
    against.

    Budgets: the mirror holds the true budgets [B_i]; each shard plans
    under its split share. Per-shard sub-budgets may undercut a
    stream's cost; the shard's view then clamps that cost down, the
    same documented clamp the unsharded engine applies on a budget
    shrink. With one shard every split is the identity ([B /. 1.] and
    [B *. 1.] are exact), which is what makes [--shards 1] bit-identical
    to the unsharded engine. *)

type t

type budget_split =
  | Even  (** every shard gets [B_i / N] *)
  | Demand
      (** shard [j] gets [B_i * d_j / Σd], where [d_j] is the summed
          positive utility of the users currently on shard [j] — the
          skew-aware split; falls back to [Even] while no demand has
          been observed. *)

val create :
  ?policy:Engine.Controller.epoch_policy ->
  ?split:budget_split ->
  ?wal_dir:string ->
  ?replicas:int ->
  ?heartbeat_every:int ->
  map:Shard_map.t ->
  Mmd.Instance.t ->
  t
(** Build one controller per shard of [map] over [inst]'s catalog.
    [inst]'s users (if any) become initial active slots, dealt by
    {!Shard_map.plan} — global slot ids equal the unsharded engine's.
    [split] defaults to [Even]. [wal_dir] turns on per-shard WALs at
    [wal_dir/shard-<i>.wal], recording each shard's {e local} delta
    stream (slot ids are shard-local, so each WAL replays standalone
    into a controller built over that shard's initial sub-instance).

    [replicas > 0] puts a {!Replica.Group} behind every shard: the
    shard's controller becomes the group's primary, each applied local
    delta is WAL-shipped to that shard's followers, and a primary
    failure inside a shard heals by follower promotion without the
    router noticing. [heartbeat_every] tunes the groups' heartbeat
    cadence (ticks; the detection timeout scales to at least 3×). With
    replicas, a [wal_dir] writer becomes the group's durable log (the
    tee point), so the on-disk format is unchanged. *)

val num_shards : t -> int
val map : t -> Shard_map.t

val apply : t -> Engine.Delta.t -> Engine.View.applied
(** Route one delta: a join goes to the least-loaded shard (interleave
    tiebreak), a leave to the owning shard (slot ids are {e global} —
    the mirror's), cost changes broadcast verbatim, budget resizes
    broadcast split per {!budget_split}. The returned [applied] speaks
    global slot ids. *)

val apply_all : t -> Engine.Delta.t list -> unit

val apply_batch : t -> Engine.Delta.t list -> unit
(** {!apply} each delta in order — routing is inherently sequential —
    with the per-shard WAL OS flushes amortized to one per shard per
    batch. WAL bytes and replication frames are identical to
    one-at-a-time applies. *)

val rebalance : t -> k:int -> int
(** One epoch of {!Shard_map.rebalance}: at most [k] users move
    between shards, each as an ordinary leave/join pair through the
    shards' delta paths (WAL-recorded like any churn). Global slot ids
    and the mirror are unchanged — a move is invisible to the outside.
    Victims are deterministic: the highest global slot on the donor
    shard. Returns the number of users moved. *)

val resplit_budgets : t -> unit
(** Re-issue the current global budgets through the splitter (a
    [Budget_resize] on every shard). A no-op rebroadcast under [Even];
    under [Demand] this is the periodic skew adaptation. *)

val replan_all : t -> unit
(** Force an epoch boundary on every shard, concurrently on the
    domain pool (shards plan over disjoint sub-worlds; each plan is
    bit-identical to a sequential replan of that shard). *)

val shard_of_slot : t -> int -> int
(** Owning shard of an active global slot, [-1] otherwise. *)

val counts : t -> int array
(** Active users per shard. Fresh copy. *)

val demand : t -> float array
(** Summed positive utility of the users on each shard (the [Demand]
    split weights). Fresh copy. *)

val controller : t -> int -> Engine.Controller.t
(** Shard [i]'s controller — in replicated mode, the current primary
    of shard [i]'s replica group. *)

val mirror : t -> Engine.View.t

(** {1 Replication surface} (no-ops / empty in unreplicated mode) *)

val replicated : t -> bool

val group : t -> int -> Replica.Group.t option
(** Shard [i]'s replica group, for chaos drivers and tests. *)

val kill_primary : t -> int -> unit
(** Kill shard [i]'s primary; detection + promotion run on the group's
    subsequent ticks (or immediately via {!fail_over}). *)

val fail_over : t -> int -> bool
(** Promote on shard [i] now; false when unreplicated or no live
    follower exists. *)

val failovers : t -> int
(** Total promotions across all shards. *)

val quiesce_replicas : t -> bool
(** Drive every shard's group to convergence (all live followers fully
    caught up); true when all converged. *)

val utility : t -> float
(** Sum of the shards' plan utilities — the sharded system's achieved
    utility. *)

val report : t -> Engine.Counters.report
(** Cross-shard aggregation: integer telemetry summed, latency
    histograms merged ({!Obs.Hist.merge_into}) before summarizing.
    [certificates]/[certified_ratio] are the router's own {!certify}
    runs, not shard counters. *)

val certify :
  ?iters:int -> t -> (Engine.Certify.outcome * Cert.Certificate.t, string) result
(** Certify the whole fleet's achieved utility against one global
    upper bound: each shard emits a sparse certificate for its
    sub-world, the per-user duals compose ({!Cert.Checker.compose})
    under a count-weighted average of the shards' budget duals, and the
    composed certificate is re-verified by the independent checker
    against the {e mirror} — the unsharded problem — so the reported
    bound is the checker's recomputation over the true global budgets
    and costs, never a sum of shard claims. With [--shards 1] the
    composition is the identity and the bound is bit-identical to
    {!Engine.Certify.sparse} on the unsharded engine. On success the
    router's report/gauge ([engine_certified_opt_ratio]) are updated. *)

val global_scratch : t -> float * int
(** [(utility, evals)] of a single global solve over the mirror — the
    reference the cross-shard utility loss is measured against:
    [loss = 1 - utility t / fst (global_scratch t)]. *)

val close : t -> unit
(** Flush and close the per-shard WAL writers, if any. *)
