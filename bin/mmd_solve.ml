(* mmd_solve: read an MMD instance file and solve it.

   Examples:
     mmd_solve instance.mmd
     mmd_solve --algorithm pipeline --verbose instance.mmd
     mmd_solve --algorithm online --lp-bound instance.mmd
     mmd_solve --exact instance.mmd           # brute force (small only)
*)

open Cmdliner
module I = Mmd.Instance
module A = Mmd.Assignment

let solve_run file algo_name exact lp_bound verbose margin stats plan_out
    plan_in domains =
  match
    Prelude.Pool.set_num_domains domains;
    let instance = Mmd.Io.read_file file in
    if verbose then Format.printf "Loaded %a@." I.pp instance;
    if stats then begin
      let a = Mmd.Analysis.analyze instance in
      Format.printf "%a@." Mmd.Analysis.pp a;
      Format.printf "recommendation: %s@.@." (Mmd.Analysis.recommend a)
    end;
    let assignment, label =
      match plan_in with
      | Some path ->
          ( Mmd.Io.read_assignment path
              ~num_users:(I.num_users instance),
            "plan:" ^ path )
      | None ->
      if exact then begin
        let opt, a = Exact.Brute_force.solve instance in
        if verbose then Format.printf "Exact optimum: %.6g@." opt;
        (a, "exact")
      end
      else
        match algo_name with
        | "threshold" ->
            (Baselines.Policies.threshold ?margin instance, "threshold")
        | "utility-order" ->
            (Baselines.Policies.utility_order instance, "utility-order")
        | name -> (
            match List.assoc_opt name Algorithms.Solve.algorithm_names with
            | Some algo -> (Algorithms.Solve.run algo instance, name)
            | None ->
                Printf.ksprintf failwith
                  "unknown algorithm %S (try: %s, threshold, utility-order)"
                  name
                  (String.concat ", "
                     (List.map fst Algorithms.Solve.algorithm_names)))
    in
    let w = A.utility instance assignment in
    Format.printf "algorithm: %s@." label;
    Format.printf "utility: %.6g@." w;
    Format.printf "feasible: %b@." (A.is_feasible instance assignment);
    Format.printf "streams transmitted: %d@."
      (List.length (A.range assignment));
    if lp_bound then begin
      let lp = Exact.Lp_relax.solve instance in
      Format.printf "lp upper bound: %.6g (ratio %.3f)@."
        lp.Exact.Lp_relax.upper_bound
        (if w > 0. then lp.Exact.Lp_relax.upper_bound /. w else infinity)
    end;
    if verbose then Format.printf "assignment: @[%a@]@." A.pp assignment;
    (match plan_out with
    | Some path ->
        Mmd.Io.write_assignment path assignment;
        Format.printf "plan written to %s@." path
    | None -> ());
    List.iter
      (fun v -> Format.printf "VIOLATION: %a@." A.pp_violation v)
      (A.violations instance assignment)
  with
  | () -> Ok ()
  | exception (Failure msg | Invalid_argument msg | Sys_error msg) ->
      Error (`Msg msg)

let file =
  Arg.(
    required
    & pos 0 (some non_dir_file) None
    & info [] ~docv:"FILE" ~doc:"Instance file (see lib/mmd/io.mli format).")

let algorithm =
  Arg.(
    value
    & opt string "pipeline"
    & info [ "a"; "algorithm" ] ~docv:"NAME"
        ~doc:
          "Algorithm: greedy, fixed-greedy, sviridenko, skew-classify, \
           pipeline, online, threshold, utility-order.")

let exact =
  Arg.(
    value & flag
    & info [ "exact" ] ~doc:"Solve exactly by branch and bound (small only).")

let lp_bound =
  Arg.(
    value & flag
    & info [ "lp-bound" ] ~doc:"Also compute the LP relaxation upper bound.")

let verbose =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the assignment.")

let margin =
  Arg.(
    value
    & opt (some float) None
    & info [ "margin" ] ~docv:"FRACTION"
        ~doc:"Safety margin for the threshold baseline (default 1.0).")

let stats =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Print instance statistics and an algorithm recommendation.")

let plan_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "plan-out" ] ~docv:"FILE" ~doc:"Write the assignment to a file.")

let plan_in =
  Arg.(
    value
    & opt (some string) None
    & info [ "plan-in" ] ~docv:"FILE"
        ~doc:
          "Evaluate a previously saved assignment against the instance \
           instead of solving.")

let domains =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Number of OCaml domains for the parallel solvers (default: \
           $(b,VDMC_DOMAINS), else the machine's recommended count minus \
           one). $(b,1) forces the exact sequential path; plans are \
           bit-identical at every setting.")

let cmd =
  let doc = "solve a Multi-budget Multi-client Distribution instance" in
  Cmd.v
    (Cmd.info "mmd_solve" ~doc)
    Term.(
      term_result
        (const solve_run $ file $ algorithm $ exact $ lp_bound $ verbose
       $ margin $ stats $ plan_out $ plan_in $ domains))

let () = exit (Cmd.eval cmd)
