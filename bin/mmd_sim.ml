(* mmd_sim: run the head-end churn simulation on an instance file (or a
   generated scenario) under a chosen online policy, optionally writing
   an event trace as CSV.

   Examples:
     mmd_sim --policy online instance.mmd
     mmd_sim --policy threshold --margin 0.9 --duration 2000 instance.mmd
     mmd_sim --policy online --trace-out events.csv instance.mmd
*)

open Cmdliner
module H = Simnet.Headend

let make_policy name margin =
  match name with
  | "threshold" -> Ok (fun t -> Simnet.Policy.threshold ?margin t)
  | "online" -> Ok (fun t -> Simnet.Policy.online_allocate t)
  | "greedy-effectiveness" ->
      Ok (fun t -> Simnet.Policy.greedy_effectiveness t)
  | "temporal" -> Ok (fun t -> Simnet.Policy.online_temporal t)
  | "static-plan" ->
      Ok (fun t -> Simnet.Policy.static_plan (Algorithms.Solve.best_of t) t)
  | "engine" -> Ok (fun t -> Simnet.Engine_driver.policy t)
  | other ->
      Error
        (Printf.sprintf
           "unknown policy %S (try: threshold, online, temporal, \
            greedy-effectiveness, static-plan, engine)"
           other)

let sim_run file policy_name margin duration rate lifetime seed trace_out
    replay_in =
  match
    let instance = Mmd.Io.read_file file in
    let make =
      match make_policy policy_name margin with
      | Ok f -> f
      | Error msg -> failwith msg
    in
    let config =
      { H.default_config with
        duration;
        arrival_rate = rate;
        mean_lifetime = lifetime }
    in
    let trace =
      match trace_out with None -> None | Some _ -> Some (Simnet.Trace.create ())
    in
    let rng = Prelude.Rng.create seed in
    let m =
      match replay_in with
      | Some path ->
          let recorded = Simnet.Trace.read_csv path in
          Format.printf "replaying %d offers from %s@."
            (List.length (Simnet.Trace.offers recorded))
            path;
          H.replay ~offers:(Simnet.Trace.offers recorded) instance make
      | None -> H.run ~rng ~config ?trace instance make
    in
    Format.printf "policy: %s@." policy_name;
    Format.printf "offered: %d  accepted: %d  rejected: %d@." m.H.offered
      m.H.accepted m.H.rejected;
    Format.printf "utility-time: %.6g@." m.H.utility_time;
    Array.iteri
      (fun i u ->
        Format.printf "budget %d: mean %.1f%%, peak %.1f%% utilization@." i
          (100. *. u)
          (100. *. m.H.peak_budget_utilization.(i)))
      m.H.mean_budget_utilization;
    Format.printf "violations: %d@." m.H.violations;
    (match (trace, trace_out) with
    | Some t, Some path ->
        Simnet.Trace.write_csv path t;
        let s = Simnet.Trace.summarize t in
        Format.printf "trace: %d events -> %s@." (Simnet.Trace.length t) path;
        Format.printf "acceptance by quarter:";
        Array.iter (fun q -> Format.printf " %.0f%%" (100. *. q))
          s.Simnet.Trace.acceptance_by_quarter;
        Format.printf "@."
    | _ -> ())
  with
  | () -> Ok ()
  | exception (Failure msg | Invalid_argument msg | Sys_error msg) ->
      Error (`Msg msg)

let file =
  Arg.(
    required
    & pos 0 (some non_dir_file) None
    & info [] ~docv:"FILE" ~doc:"Instance file (the catalog).")

let policy =
  Arg.(
    value & opt string "online"
    & info [ "p"; "policy" ] ~docv:"NAME"
        ~doc:
          "Admission policy: threshold, online, temporal, \
           greedy-effectiveness, static-plan, engine.")

let margin =
  Arg.(
    value
    & opt (some float) None
    & info [ "margin" ] ~docv:"FRACTION" ~doc:"Threshold safety margin.")

let duration =
  Arg.(
    value & opt float 1000.
    & info [ "duration" ] ~docv:"T" ~doc:"Simulated time horizon.")

let rate =
  Arg.(
    value & opt float 0.5
    & info [ "rate" ] ~docv:"R" ~doc:"Stream offers per time unit.")

let lifetime =
  Arg.(
    value & opt float 120.
    & info [ "lifetime" ] ~docv:"T" ~doc:"Mean admitted-session length.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Seed.")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE" ~doc:"Write the event trace as CSV.")

let replay_in =
  Arg.(
    value
    & opt (some non_dir_file) None
    & info [ "replay" ] ~docv:"FILE"
        ~doc:
          "Replay the offer workload recorded in a CSV trace instead of \
           generating one ($(b,--duration)/$(b,--rate)/$(b,--lifetime) are \
           then ignored).")

let cmd =
  let doc = "simulate head-end admission under session churn" in
  Cmd.v (Cmd.info "mmd_sim" ~doc)
    Term.(
      term_result
        (const sim_run $ file $ policy $ margin $ duration $ rate $ lifetime
       $ seed $ trace_out $ replay_in))

let () = exit (Cmd.eval cmd)
