(* mmd_engine: run the incremental replanning engine against a churn
   delta log.

   The positional FILE is either an instance file (the initial world)
   or an engine snapshot from a previous run (--snapshot-out); the two
   are distinguished by content. Delta logs come in two flavors,
   also distinguished by content: the plain human-editable format and
   the CRC-framed WAL (--wal-out / Engine.Wal). WAL replays recover
   around corruption (quarantining bad records) and, when resuming
   from a snapshot, skip the records the snapshot already covers.

   --batch N applies deltas through Controller.apply_batch, N at a
   time. Batches never cross a boundary where a one-at-a-time run
   takes an action (a periodic snapshot or checkpoint, a simulated
   crash or primary kill, a rebalance epoch), so every artifact and
   every replan lands at exactly the same applied-delta position
   whatever the batch size — plans are bit-identical across N.

   --wal-dir DIR replaces the monolithic --wal-out with a segmented
   store plus a checkpoint chain (DIR/chain.ckpt). Checkpoints are
   delta-encoded increments written every --checkpoint-every applied
   deltas; each checkpoint retires the WAL segments it covers, so the
   bytes a restart must read stay bounded no matter how long the run.
   On startup the recovery chooser prices chain+tail against
   snapshot+tail and a full replay and takes the cheapest.

   Examples:
     mmd_engine instance.mmd --deltas churn.log
     mmd_engine instance.mmd --gen-deltas 5000 --seed 7 --deltas-out churn.log
     mmd_engine instance.mmd --deltas churn.log --epoch drift:0.05 --compare
     mmd_engine instance.mmd --deltas churn.wal --wal-out churn.wal \
       --snapshot-out state.eng --snapshot-every 500
     mmd_engine state.eng --deltas churn.wal     # resume after a crash
     mmd_engine instance.mmd --gen-deltas 20000 --batch 64 \
       --wal-dir state/ --checkpoint-every 512   # bounded-recovery run
     mmd_engine instance.mmd --wal-dir state/    # resume: chain + tail
*)

open Cmdliner
module C = Engine.Controller

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Everything the operator needs to resume is printed even when the
   run dies mid-log: the last applied record, the epoch phase, and the
   full counter report. *)
let print_partial_state ctrl ~applied ~last_seq =
  Format.printf "last applied: %d deltas this run (log seq %d)@." applied
    last_seq;
  Format.printf "lifetime deltas: %d, epoch phase: %d since last replan@."
    (C.deltas_applied ctrl) (C.since_replan ctrl);
  Format.printf "%a@." Engine.Counters.pp_report (C.report ctrl)

(* Feed [records] to [f] in chunks of at most [batch], never letting a
   chunk cross a boundary where the per-record loop would take an
   action: [boundary ~applied] returns how many records may still be
   taken when [applied] records have been consumed so far (max_int
   when unconstrained). With batch = 1 this degenerates to the
   per-record loop exactly. *)
let iter_batches ~batch ~boundary records f =
  let rec take k acc rest =
    if k = 0 then (List.rev acc, rest)
    else
      match rest with
      | [] -> (List.rev acc, [])
      | r :: tl -> take (k - 1) (r :: acc) tl
  in
  let rec go applied = function
    | [] -> ()
    | records ->
        let n = max 1 (min batch (boundary ~applied)) in
        let chunk, rest = take n [] records in
        f chunk;
        go (applied + List.length chunk) rest
  in
  go 0 records

(* ---------- Multi-process replica modes ---------- *)

let parse_endpoint s =
  match Replica.Transport_socket.endpoint_of_string s with
  | Ok ep -> ep
  | Error msg -> failwith msg

let parse_endpoints s =
  List.map parse_endpoint
    (List.filter (fun x -> x <> "") (String.split_on_char ',' s))

(* Follower process: serve the socket until a primary says quit (or
   nobody talks to us for the idle timeout). The printed digest is
   what the supervisor greps to assert convergence. *)
let follower_serve_run ~policy ~listen ~replica_id ~idle_timeout inst =
  match
    Replica.Proc.serve ~idle_timeout_s:idle_timeout ~policy
      ~endpoint:(parse_endpoint listen) inst
  with
  | Replica.Proc.Quit s ->
      Format.printf "PROC-FOLLOWER %d term=%d acked=%d digest=%s@." replica_id
        s.Replica.Proc.fterm s.Replica.Proc.acked s.Replica.Proc.state_digest
  | Replica.Proc.Orphaned ->
      Format.printf "PROC-FOLLOWER %d orphaned@." replica_id;
      Format.print_flush ();
      exit 4

(* Primary process: apply + WAL-flush + ship every record;
   --replica-kill-at SIGKILLs this very process (optionally leaving a
   torn frame on every wire first), which is what the supervisor's
   recovery path exists to survive. *)
let primary_proc_run ~policy ~records ~endpoints ~wal_writer ~heartbeat_every
    ~kill_at ~kill_mid_frame inst =
  let peers = Replica.Proc.connect_peers endpoints in
  let ctrl = C.create ~policy inst in
  let history : (int, bool * string) Hashtbl.t = Hashtbl.create 1024 in
  let hb_every = max 1 (Option.value heartbeat_every ~default:8) in
  let term = 0 in
  let applied = ref 0 and last = ref 0 in
  let next_seq = ref 1 in
  (* Durability before shipping: the record reaches the (flushed) WAL
     before any byte of it hits a wire, so the shipped stream is
     always a prefix-of-WAL and recovery can re-ship the tail. *)
  let log_record d =
    match wal_writer with
    | Some w -> Engine.Wal.append_tee ~flush:true w d
    | None ->
        let seq = !next_seq in
        (seq, Engine.Wal.record_to_string ~seq d)
  in
  List.iter
    (fun (_, d) ->
      (match kill_at with
      | Some k when !applied = k ->
          if kill_mid_frame then begin
            (* The torn record is durable: it reaches the WAL before
               the half-frame hits the wire, so recovery must re-ship
               it to every survivor. *)
            let _, line = log_record d in
            Replica.Proc.write_torn_frame peers ~term ~line
          end;
          Format.print_flush ();
          Unix.kill (Unix.getpid ()) Sys.sigkill
      | _ -> ());
      let seq, line = log_record d in
      next_seq := seq + 1;
      ignore (C.apply ctrl d);
      Hashtbl.replace history seq (false, line);
      last := seq;
      Replica.Proc.ship peers ~term ~shock:false line;
      incr applied;
      if !applied mod hb_every = 0 then
        Replica.Proc.heartbeat peers ~term ~last_seq:!last ~tick:!applied)
    records;
  let converged = Replica.Proc.catch_up peers ~term ~history ~last_seq:!last in
  let mine = Replica.Proc.digest ctrl in
  let divergent =
    List.fold_left
      (fun n p ->
        match Replica.Proc.collect_digest p with
        | Some d when d = mine -> n
        | _ -> n + 1)
      0 peers
  in
  Replica.Proc.quit_peers peers;
  (match wal_writer with Some w -> Engine.Wal.close w | None -> ());
  Format.printf
    "PROC-PRIMARY applied=%d last_seq=%d followers=%d divergent=%d%s@."
    !applied !last (List.length peers) divergent
    (if converged then "" else " [NOT converged]");
  if divergent > 0 || not converged then begin
    Format.print_flush ();
    exit 5
  end

let rec waitpid_retry pid =
  try Unix.waitpid [] pid
  with Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid

(* Supervisor: spawn N follower processes + 1 primary process
   (re-execing this very binary), wait on the primary, and — when it
   died by signal (--replica-kill-at SIGKILLs it) — run the recovery
   coordinator over the durable WAL and assert every survivor
   converges bit-identically to the WAL replay. *)
let supervise_run ~policy ~file ~epoch ~n ~gen_deltas ~deltas_in ~seed
    ~wal_out ~heartbeat_every ~kill_at ~kill_mid_frame ~idle_timeout inst =
  if n < 1 then failwith "--replica-supervise: need at least 1 follower";
  let dir =
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "mmd-proc-%d" (Unix.getpid ()))
    in
    (try Unix.mkdir d 0o700
     with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d
  in
  let sock i = Filename.concat dir (Printf.sprintf "follower-%d.sock" i) in
  let wal =
    match wal_out with
    | Some w -> w
    | None -> Filename.concat dir "primary.wal"
  in
  let exe = Sys.executable_name in
  let ids = List.init n (fun i -> i + 1) in
  let spawn args =
    Unix.create_process exe
      (Array.of_list (exe :: args))
      Unix.stdin Unix.stdout Unix.stderr
  in
  let followers =
    List.map
      (fun i ->
        ( i,
          spawn
            [ file; "--replica-listen"; "unix:" ^ sock i; "--replica-id";
              string_of_int i; "--replica-idle-timeout";
              Printf.sprintf "%g" idle_timeout; "--epoch"; epoch ] ))
      ids
  in
  let primary_args =
    [ file; "--replica-connect";
      String.concat "," (List.map (fun i -> "unix:" ^ sock i) ids); "--epoch";
      epoch; "--wal-out"; wal; "--seed"; string_of_int seed ]
    @ (match gen_deltas with
      | Some g -> [ "--gen-deltas"; string_of_int g ]
      | None -> [])
    @ (match deltas_in with Some p -> [ "--deltas"; p ] | None -> [])
    @ (match heartbeat_every with
      | Some h -> [ "--heartbeat-every"; string_of_int h ]
      | None -> [])
    @ (match kill_at with
      | Some k -> [ "--replica-kill-at"; string_of_int k ]
      | None -> [])
    @ (if kill_mid_frame then [ "--replica-kill-mid-frame" ] else [])
  in
  let ppid = spawn primary_args in
  let _, pstatus = waitpid_retry ppid in
  let failed = ref 0 in
  (match pstatus with
  | Unix.WEXITED 0 -> Format.printf "PROC-SUPERVISOR primary exited cleanly@."
  | Unix.WSIGNALED s ->
      Format.printf "PROC-SUPERVISOR primary killed by signal %d; recovering@."
        s;
      let endpoints = List.map (fun i -> parse_endpoint ("unix:" ^ sock i)) ids in
      (match
         Replica.Proc.recover_and_verify ~policy ~endpoints ~wal_path:wal
           ~term:1 inst
       with
      | Ok r ->
          Format.printf
            "PROC-SUPERVISOR survivors=%d divergent=%d wal_records=%d \
             digest=%s@."
            r.Replica.Proc.survivors r.Replica.Proc.divergent
            r.Replica.Proc.wal_records r.Replica.Proc.reference_digest;
          if r.Replica.Proc.divergent > 0 then incr failed
      | Error msg ->
          Format.printf "PROC-SUPERVISOR recovery failed: %s@." msg;
          incr failed)
  | Unix.WEXITED c ->
      Format.printf "PROC-SUPERVISOR primary exited %d@." c;
      incr failed
  | Unix.WSTOPPED _ -> incr failed);
  List.iter
    (fun (i, pid) ->
      let _, st = waitpid_retry pid in
      match st with
      | Unix.WEXITED 0 -> ()
      | Unix.WEXITED c ->
          Format.printf "PROC-SUPERVISOR follower %d exited %d@." i c;
          incr failed
      | Unix.WSIGNALED s | Unix.WSTOPPED s ->
          Format.printf "PROC-SUPERVISOR follower %d died on signal %d@." i s;
          incr failed)
    followers;
  List.iter (fun i -> try Sys.remove (sock i) with Sys_error _ -> ()) ids;
  (match wal_out with
  | None -> ( try Sys.remove wal with Sys_error _ -> ())
  | Some _ -> ());
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  Format.printf "PROC-SUPERVISOR done: %d follower(s), %d failure(s)@." n
    !failed;
  if !failed > 0 then begin
    Format.print_flush ();
    exit 5
  end

(* Sharded mode: FILE must be an instance; every delta is routed
   through a Shard.Router over N full engine stacks. --wal-out names a
   DIRECTORY holding shard-<i>.wal (each replays standalone into a
   controller over that shard's initial sub-world). *)
let sharded_run ~file ~deltas_in ~gen_deltas ~seed ~deltas_out ~epoch
    ~skip_final ~compare_scratch ~wal_out ~metrics_out ~stats ~shards
    ~shard_tags ~split ~rebalance_every ~rebalance_k ~replicas
    ~heartbeat_every ~batch ~certify =
  let policy =
    match C.policy_of_string epoch with
    | Ok p -> p
    | Error msg -> failwith msg
  in
  let split =
    match split with
    | "even" -> Shard.Router.Even
    | "demand" -> Shard.Router.Demand
    | other -> failwith (Printf.sprintf "unknown budget split %S" other)
  in
  let text = read_all file in
  if Engine.Snapshot.is_snapshot text then
    failwith
      "sharded mode starts from an instance; recovery goes through the \
       per-shard WALs, not a snapshot";
  let inst = Mmd.Io.of_string text in
  let tags =
    match shard_tags with
    | Some spec ->
        let tags = Array.of_list (String.split_on_char ',' spec) in
        if Array.length tags <> shards then
          failwith
            (Printf.sprintf "--shard-tags names %d racks for %d shards"
               (Array.length tags) shards);
        tags
    | None -> Array.init shards (fun i -> Printf.sprintf "rack%d" (i mod 2))
  in
  let map = Shard.Shard_map.create ~seed ~tags () in
  let router =
    Shard.Router.create ~policy ~split ?wal_dir:wal_out ?replicas
      ?heartbeat_every ~map inst
  in
  let log =
    match (deltas_in, gen_deltas) with
    | Some path, _ ->
        let text = read_all path in
        if Engine.Wal.is_wal text then begin
          match Engine.Wal.recover_string text with
          | Error msg -> failwith msg
          | Ok r ->
              if r.Engine.Wal.quarantined <> [] then
                Format.printf "WAL recovery: quarantined %d record(s)@."
                  (List.length r.Engine.Wal.quarantined);
              List.map snd r.Engine.Wal.records
        end
        else Engine.Delta.log_of_string text
    | None, Some n ->
        let rng = Prelude.Rng.create seed in
        let log =
          Engine.Churn.generate ~rng
            (Engine.View.of_instance inst)
            { Engine.Churn.default with deltas = n }
        in
        (match deltas_out with
        | Some path ->
            Engine.Delta.write_log path log;
            Format.printf "wrote %d deltas to %s@." n path
        | None -> ());
        log
    | None, None -> []
  in
  let applied = ref 0 and moves = ref 0 in
  let t0 = Obs.Clock.now () in
  let boundary ~applied =
    match rebalance_every with
    | Some every -> every - (applied mod every)
    | None -> max_int
  in
  iter_batches ~batch ~boundary log (fun chunk ->
      Shard.Router.apply_batch router chunk;
      applied := !applied + List.length chunk;
      match rebalance_every with
      | Some every when !applied mod every = 0 ->
          moves := !moves + Shard.Router.rebalance router ~k:rebalance_k;
          if split = Shard.Router.Demand then
            Shard.Router.resplit_budgets router
      | _ -> ());
  if not skip_final then Shard.Router.replan_all router;
  let elapsed = Obs.Clock.elapsed_since t0 in
  let n = !applied in
  Format.printf
    "applied %d deltas across %d shards in %.3fs wall (%.0f deltas/s \
     aggregate)@."
    n shards elapsed
    (if elapsed > 0. then float n /. elapsed else 0.);
  let counts = Shard.Router.counts router in
  Format.printf "shard populations:";
  Array.iteri
    (fun i c ->
      Format.printf " %d:%d[%s]" i c (Shard.Shard_map.tag map i))
    counts;
  Format.printf "@.";
  if !moves > 0 then Format.printf "rebalance moves: %d@." !moves;
  if Shard.Router.replicated router then begin
    let converged = Shard.Router.quiesce_replicas router in
    Format.printf "replication: %d replica(s) per shard, %d failover(s)%s@."
      (Option.value ~default:0 replicas)
      (Shard.Router.failovers router)
      (if converged then "" else " [followers NOT converged]")
  end;
  Format.printf "sharded utility: %.6g@." (Shard.Router.utility router);
  (if certify then
     match Shard.Router.certify router with
     | Error msg -> Format.printf "certificate: none (%s)@." msg
     | Ok (o, _) ->
         Format.printf
           "certificate: bound %.6g, achieved %.6g, ratio %.4f (sparse, \
            composed over %d shard(s)%s)@."
           o.Engine.Certify.bound o.Engine.Certify.achieved
           o.Engine.Certify.ratio shards
           (if o.Engine.Certify.repaired then ", repaired" else ""));
  Format.printf "%a@." Engine.Counters.pp_report (Shard.Router.report router);
  if compare_scratch then begin
    let global, evals = Shard.Router.global_scratch router in
    let loss =
      if global > 0. then
        100. *. (1. -. (Shard.Router.utility router /. global))
      else 0.
    in
    Format.printf
      "single global solve: utility %.6g (cross-shard loss %.2f%%), %d \
       evals@."
      global loss evals
  end;
  Shard.Router.close router;
  if stats then Format.printf "%s@." (Obs.Export.stats_table ());
  match metrics_out with
  | Some path ->
      Obs.Export.write_prometheus path;
      Format.printf "metrics -> %s@." path
  | None -> ()

(* The common end-of-run reporting: plan summary, counter report,
   optional scratch comparison and artifact outputs. *)
let finish_run ~ctrl ~compare_scratch ~plan_out ~snapshot_out ~stats
    ~metrics_out ~trace_out ~certify =
  Format.printf "plan: %d streams transmitted, utility %.6g%s@."
    (List.length (Engine.Planner.admitted (C.planner ctrl)))
    (C.utility ctrl)
    (if C.degraded ctrl then " [degraded]" else "");
  (if certify then
     (* The checker's verdict is what gets printed — the emitters only
        propose. Small worlds take the dense LP path, large ones the
        tableau-free Lagrangian path; both degrade to "none" rather than
        report an unverified number. *)
     let inst = Engine.View.materialize (C.view ctrl) in
     let achieved = C.utility ctrl in
     match Exact.Certificate.emit ~target:achieved inst with
     | Error msg -> Format.printf "certificate: none (%s)@." msg
     | Ok (cert, method_) -> (
         match Exact.Certificate.check inst cert with
         | Cert.Checker.Rejected msg ->
             Format.printf "certificate: REJECTED by checker (%s)@." msg
         | Cert.Checker.Certified { bound; repaired } ->
             let ratio = Engine.Certify.ratio_of ~achieved ~bound in
             Engine.Counters.note_certificate (C.counters ctrl) ~ratio;
             Format.printf
               "certificate: bound %.6g, achieved %.6g, ratio %.4f (%s%s)@."
               bound achieved ratio
               (Exact.Certificate.string_of_method method_)
               (if repaired then ", repaired" else "")));
  Format.printf "%a@." Engine.Counters.pp_report (C.report ctrl);
  if compare_scratch then begin
    let scratch_util, scratch_evals = C.scratch (C.view ctrl) in
    let gap =
      if scratch_util > 0. then
        100. *. (1. -. (C.utility ctrl /. scratch_util))
      else 0.
    in
    Format.printf
      "from-scratch eager solve: utility %.6g (engine gap %.2f%%), %d \
       evals for one solve@."
      scratch_util gap scratch_evals
  end;
  (match plan_out with
  | Some path ->
      Mmd.Io.write_assignment path (C.plan ctrl);
      Format.printf "plan -> %s@." path
  | None -> ());
  (match snapshot_out with
  | Some path ->
      Engine.Snapshot.write_file path ctrl;
      Format.printf "snapshot -> %s@." path
  | None -> ());
  if stats then Format.printf "%s@." (Obs.Export.stats_table ());
  (match metrics_out with
  | Some path ->
      Obs.Export.write_prometheus path;
      Format.printf "metrics -> %s@." path
  | None -> ());
  match trace_out with
  | Some path ->
      Obs.Trace.close ();
      Format.printf "trace -> %s (%d spans)@." path
        (Obs.Trace.spans_emitted ())
  | None -> ()

(* Replicated mode: the replay goes through a Replica.Group — the
   primary applies and WAL-ships every delta to the followers, and
   --kill-primary-at exercises heartbeat detection + promotion mid-log.
   Batches cut at the crash / kill / snapshot boundaries, so those
   events land at the same applied-delta positions as a per-record
   run; Group.apply_batch itself preserves the per-record tick
   machinery (heartbeats and failover fire at identical points). *)
let replicated_run ~records ~policy ~replicas ~heartbeat_every
    ~kill_primary_at ~hand_over_at ~transport ~wal_writer ~skip_final
    ~snapshot_out ~snapshot_every ~crash_after ~batch inst =
  let config =
    match heartbeat_every with
    | None -> Replica.Group.default_config
    | Some hb ->
        { Replica.Group.default_config with
          heartbeat_every = hb;
          heartbeat_timeout =
            max (3 * hb) Replica.Group.default_config.heartbeat_timeout
        }
  in
  let mk_link =
    match transport with
    | "queue" -> fun _ -> Replica.Transport.queue_link ()
    | "socket" -> fun _ -> Replica.Transport_socket.loopback ()
    | other -> failwith (Printf.sprintf "unknown replica transport %S" other)
  in
  let g =
    Replica.Group.create ~policy ~config ~mk_link ?wal:wal_writer ~replicas
      inst
  in
  let applied = ref 0 in
  let t0 = Obs.Clock.now () in
  let boundary ~applied =
    let cut =
      match crash_after with
      | Some n -> max 1 (n - applied)
      | None -> max_int
    in
    let cut =
      match kill_primary_at with
      | Some n when n > applied -> min cut (n - applied)
      | _ -> cut
    in
    let cut =
      match hand_over_at with
      | Some n when n > applied -> min cut (n - applied)
      | _ -> cut
    in
    match (snapshot_every, snapshot_out) with
    | Some every, Some _ -> min cut (every - (applied mod every))
    | _ -> cut
  in
  iter_batches ~batch ~boundary records (fun chunk ->
      (match crash_after with
      | Some n when !applied >= n ->
          (match wal_writer with
          | Some w -> Engine.Wal.flush_writer w
          | None -> ());
          Format.printf "simulated crash at delta boundary %d@." !applied;
          Format.print_flush ();
          exit 3
      | _ -> ());
      (match kill_primary_at with
      | Some n when !applied = n && Replica.Group.primary_alive g ->
          Format.printf "killing primary (replica %d) at delta boundary %d@."
            (Replica.Group.primary_id g)
            n;
          Replica.Group.kill_primary g
      | _ -> ());
      (match hand_over_at with
      | Some n when !applied = n -> (
          match Replica.Group.hand_over g with
          | Ok id ->
              Format.printf
                "hand-over at boundary %d: new primary replica %d, lost 0 \
                 deltas@."
                n id
          | Error msg ->
              Format.printf "hand-over at boundary %d refused: %s@." n msg)
      | _ -> ());
      Replica.Chaos.ensure_promoted g;
      ignore (Replica.Group.apply_batch g (List.map snd chunk));
      applied := !applied + List.length chunk;
      match (snapshot_every, snapshot_out) with
      | Some every, Some path when !applied mod every = 0 ->
          Engine.Snapshot.write_file path (Replica.Group.primary g)
      | _ -> ());
  let converged = Replica.Group.quiesce g in
  if not skip_final then C.replan (Replica.Group.primary g);
  let elapsed = Obs.Clock.elapsed_since t0 in
  Format.printf "applied %d deltas in %.3fs wall (%.0f deltas/s)@." !applied
    elapsed
    (if elapsed > 0. then float !applied /. elapsed else 0.);
  Format.printf
    "replication: %d follower(s), term %d, %d failover(s), primary replica \
     %d%s@."
    (Replica.Group.replicas g)
    (Replica.Group.term g)
    (Replica.Group.failovers g)
    (Replica.Group.primary_id g)
    (if converged then "" else " [followers NOT converged]");
  if Replica.Group.failovers g > 0 then
    Format.printf "time to promote: %.6fs@."
      (Replica.Group.last_promote_seconds g);
  if Replica.Group.handovers g > 0 then
    Format.printf "planned hand-overs: %d@." (Replica.Group.handovers g);
  List.iter
    (fun id ->
      Format.printf "follower %d: acked seq %d (lag %d)@." id
        (Option.value ~default:0 (Replica.Group.acked g id))
        (Option.value ~default:0 (Replica.Group.lag g id)))
    (Replica.Group.live_followers g);
  let primary = Replica.Group.primary g in
  Replica.Group.close g;
  primary

let engine_run file deltas_in gen_deltas seed deltas_out epoch skip_final
    compare_scratch snapshot_in snapshot_out snapshot_every plan_out domains
    wal_out crash_after trace_out metrics_out stats shards shard_tags split
    rebalance_every rebalance_k replicas heartbeat_every kill_primary_at
    hand_over_at replica_transport replica_listen replica_connect
    replica_supervise replica_id replica_idle_timeout replica_kill_at
    replica_kill_mid_frame batch wal_dir checkpoint_every certify =
  match shards with
  | Some n when n >= 1 -> (
      match
        if batch < 1 then failwith "--batch: need at least 1";
        if wal_dir <> None then
          failwith
            "--wal-dir is unsupported with --shards (per-shard WALs live \
             under --wal-out DIR)";
        Prelude.Pool.set_num_domains domains;
        sharded_run ~file ~deltas_in ~gen_deltas ~seed ~deltas_out ~epoch
          ~skip_final ~compare_scratch ~wal_out ~metrics_out ~stats ~shards:n
          ~shard_tags ~split ~rebalance_every ~rebalance_k ~replicas
          ~heartbeat_every ~batch ~certify
      with
      | () -> Ok ()
      | exception (Failure msg | Invalid_argument msg | Sys_error msg) ->
          Error (`Msg msg))
  | Some n -> Error (`Msg (Printf.sprintf "--shards %d: need at least 1" n))
  | None ->
  match
    if batch < 1 then failwith "--batch: need at least 1";
    if checkpoint_every < 1 then failwith "--checkpoint-every: need at least 1";
    Prelude.Pool.set_num_domains domains;
    (match trace_out with
    | Some path -> Obs.Trace.set_output path
    | None -> ());
    let policy =
      match C.policy_of_string epoch with
      | Ok p -> p
      | Error msg -> failwith msg
    in
    let text = read_all file in
    let restore_snapshot ~path ~text =
      match Engine.Snapshot.load_result text with
      | Ok ctrl ->
          Format.printf "restored snapshot: %d slots active, utility %.6g@."
            (Engine.View.active_count (C.view ctrl))
            (C.utility ctrl);
          ctrl
      | Error msg -> (
          (* The on-disk fallback generation may still be good. *)
          match Engine.Snapshot.read_file_result path with
          | Ok (ctrl, Engine.Snapshot.Previous) ->
              Format.printf
                "snapshot damaged (%s); fell back to previous generation: \
                 %d slots active, utility %.6g@."
                msg
                (Engine.View.active_count (C.view ctrl))
                (C.utility ctrl);
              ctrl
          | Ok (ctrl, Engine.Snapshot.Current) -> ctrl
          | Error msg -> failwith msg)
    in
    (* The replay stream as (seq, delta) pairs. Plain logs are
       numbered from [already] (the restored lifetime delta count) —
       continuation semantics for a snapshot-resumed run fed new
       deltas. Under --wal-dir the input log is the same log the
       crashed run consumed from seq 1, so [plain_from_start] numbers
       it from 1 and the recovered prefix is skipped like a WAL's.
       WAL records carry their own authoritative sequence numbers and
       records a snapshot already covers are skipped. [note] receives
       the quarantined count for the counters of whichever controller
       ends up replaying. *)
    let load_records ?(plain_from_start = false) ~already ~view ~note () =
      match (deltas_in, gen_deltas) with
      | Some path, _ ->
          let text = read_all path in
          if Engine.Wal.is_wal text then begin
            match Engine.Wal.recover_string text with
            | Error msg -> failwith msg
            | Ok r ->
                if r.Engine.Wal.quarantined <> [] then begin
                  let n = List.length r.Engine.Wal.quarantined in
                  note n;
                  Format.printf "WAL recovery: quarantined %d record(s)%s@."
                    n
                    (if r.Engine.Wal.torn_tail then
                       " (including a torn tail)"
                     else "");
                  List.iteri
                    (fun i (q : Engine.Wal.quarantined) ->
                      if i < 10 then
                        Format.printf "  line %d: %s@." q.Engine.Wal.line
                          q.Engine.Wal.reason)
                    r.Engine.Wal.quarantined;
                  if n > 10 then Format.printf "  ... and %d more@." (n - 10)
                end;
                let fresh, skipped =
                  List.partition
                    (fun (seq, _) -> seq > already)
                    r.Engine.Wal.records
                in
                if skipped <> [] then
                  Format.printf
                    "resume: skipping %d record(s) already covered by the \
                     snapshot (up to seq %d)@."
                    (List.length skipped) already;
                fresh
          end
          else if plain_from_start then begin
            let all =
              List.mapi (fun i d -> (i + 1, d)) (Engine.Delta.log_of_string text)
            in
            let fresh, skipped =
              List.partition (fun (seq, _) -> seq > already) all
            in
            if skipped <> [] then
              Format.printf
                "resume: skipping %d record(s) already recovered (up to seq \
                 %d)@."
                (List.length skipped) already;
            fresh
          end
          else
            List.mapi
              (fun i d -> (already + i + 1, d))
              (Engine.Delta.log_of_string text)
      | None, Some n ->
          let rng = Prelude.Rng.create seed in
          let log =
            Engine.Churn.generate ~rng view
              { Engine.Churn.default with deltas = n }
          in
          (match deltas_out with
          | Some path ->
              Engine.Delta.write_log path log;
              Format.printf "wrote %d deltas to %s@." n path
          | None -> ());
          List.mapi (fun i d -> (already + i + 1, d)) log
      | None, None -> []
    in
    let wal_writer =
      match wal_out with
      | Some path ->
          if wal_dir <> None then
            failwith "--wal-out and --wal-dir are mutually exclusive";
          (* Continue the sequence from what the log already holds, so
             crash + resume keeps one coherent WAL. *)
          let next_seq =
            if Sys.file_exists path then
              match Engine.Wal.recover_file path with
              | Ok r -> r.Engine.Wal.last_seq + 1
              | Error _ -> 1
            else 1
          in
          Some (Engine.Wal.append_file ~next_seq path)
      | None -> None
    in
    let is_snapshot_file = Engine.Snapshot.is_snapshot text in
    match replica_listen with
    | Some listen ->
        if is_snapshot_file then
          failwith "--replica-listen starts from an instance";
        follower_serve_run ~policy ~listen ~replica_id
          ~idle_timeout:replica_idle_timeout (Mmd.Io.of_string text)
    | None ->
    match replica_connect with
    | Some addrs ->
        if is_snapshot_file then
          failwith "--replica-connect starts from an instance";
        let inst = Mmd.Io.of_string text in
        let records =
          load_records ~already:0 ~view:(Engine.View.of_instance inst)
            ~note:(fun _ -> ())
            ()
        in
        primary_proc_run ~policy ~records ~endpoints:(parse_endpoints addrs)
          ~wal_writer ~heartbeat_every ~kill_at:replica_kill_at
          ~kill_mid_frame:replica_kill_mid_frame inst
    | None ->
    match replica_supervise with
    | Some n ->
        if is_snapshot_file then
          failwith "--replica-supervise starts from an instance";
        supervise_run ~policy ~file ~epoch ~n ~gen_deltas ~deltas_in ~seed
          ~wal_out ~heartbeat_every ~kill_at:replica_kill_at
          ~kill_mid_frame:replica_kill_mid_frame
          ~idle_timeout:replica_idle_timeout (Mmd.Io.of_string text)
    | None ->
    match replicas with
    | Some r when r >= 1 ->
        if is_snapshot_file then
          failwith
            "--replicas starts from an instance (replication rebuilds \
             follower state by shipping, not snapshots)";
        if snapshot_in <> None then
          failwith "--replicas and --snapshot-in are mutually exclusive";
        if wal_dir <> None then
          failwith
            "--wal-dir is unsupported with --replicas (the group's durable \
             log is --wal-out)";
        let inst = Mmd.Io.of_string text in
        let records =
          load_records ~already:0 ~view:(Engine.View.of_instance inst)
            ~note:(fun _ -> ())
            ()
        in
        let ctrl =
          replicated_run ~records ~policy ~replicas:r ~heartbeat_every
            ~kill_primary_at ~hand_over_at ~transport:replica_transport
            ~wal_writer ~skip_final ~snapshot_out ~snapshot_every
            ~crash_after ~batch inst
        in
        (match wal_writer with Some w -> Engine.Wal.close w | None -> ());
        finish_run ~ctrl ~compare_scratch ~plan_out ~snapshot_out ~stats
          ~metrics_out ~trace_out ~certify
    | Some r -> failwith (Printf.sprintf "--replicas %d: need at least 1" r)
    | None ->
    (* Build the starting controller. With --wal-dir the segmented
       store is both the durable log and the replay input: the
       recovery chooser prices checkpoint-chain + store tail against
       snapshot + tail and a full replay of the store, the chosen
       state is restored, and the uncovered store tail is replayed
       before any new input records are consumed (so churn generation
       sees the recovered world). *)
    let ctrl, store_ctx =
      match wal_dir with
      | None ->
          let ctrl =
            if is_snapshot_file then restore_snapshot ~path:file ~text
            else
              match snapshot_in with
              | Some snap ->
                  (* Startup recovery choice: estimate snapshot+tail
                     against a full replay and take the cheaper path.
                     The WAL length is counted before building any
                     controller. *)
                  let total_records =
                    match deltas_in with
                    | Some path -> (
                        let dtext = read_all path in
                        if Engine.Wal.is_wal dtext then
                          match Engine.Wal.recover_string dtext with
                          | Ok r -> List.length r.Engine.Wal.records
                          | Error _ -> 0
                        else List.length (Engine.Delta.log_of_string dtext))
                    | None -> 0
                  in
                  let est =
                    Engine.Recovery.assess ~snapshot_path:snap ~total_records
                      ()
                  in
                  Format.printf
                    "recovery: taking %s (estimated snapshot+tail %.4gs vs \
                     full replay %.4gs)@."
                    (Engine.Recovery.choice_to_string
                       est.Engine.Recovery.choice)
                    est.Engine.Recovery.snapshot_seconds
                    est.Engine.Recovery.replay_seconds;
                  let ctrl =
                    match est.Engine.Recovery.choice with
                    | Engine.Recovery.Snapshot_tail ->
                        restore_snapshot ~path:snap ~text:(read_all snap)
                    | Engine.Recovery.Full_replay ->
                        C.create ~policy (Mmd.Io.of_string text)
                    | Engine.Recovery.Chain_tail ->
                        (* No chain was offered to the chooser here;
                           chains live under --wal-dir. *)
                        assert false
                  in
                  Engine.Recovery.note (C.counters ctrl)
                    est.Engine.Recovery.choice;
                  ctrl
              | None -> C.create ~policy (Mmd.Io.of_string text)
          in
          (ctrl, None)
      | Some dir ->
          if is_snapshot_file then
            failwith
              "--wal-dir starts from an instance; state comes back through \
               the checkpoint chain and the segment store";
          let inst = Mmd.Io.of_string text in
          let chain = Filename.concat dir "chain.ckpt" in
          let recovery =
            if Sys.file_exists dir then
              match Engine.Wal_store.recover_dir dir with
              | Ok r -> Some r
              | Error _ -> None (* no segments yet: fresh store *)
            else None
          in
          let ctrl, tail =
            match recovery with
            | None -> (C.create ~policy inst, [])
            | Some r ->
                let total_records = r.Engine.Wal_store.last_seq in
                let est =
                  Engine.Recovery.assess ~chain_path:chain
                    ~snapshot_path:
                      (Option.value snapshot_in
                         ~default:(Filename.concat dir ".no-snapshot"))
                    ~total_records ()
                in
                let est =
                  (* A compacted store cannot serve a full replay — the
                     records below first_seq are gone — so the chain
                     must cover the gap. *)
                  if r.Engine.Wal_store.first_seq > 1 then
                    match Engine.Checkpoint.peek chain with
                    | Some (_, covered, _)
                      when covered >= r.Engine.Wal_store.first_seq - 1 ->
                        { est with
                          Engine.Recovery.choice = Engine.Recovery.Chain_tail
                        }
                    | _ ->
                        failwith
                          (Printf.sprintf
                             "store %s is compacted below seq %d but the \
                              checkpoint chain does not cover the gap"
                             dir r.Engine.Wal_store.first_seq)
                  else est
                in
                Format.printf
                  "recovery: taking %s (chain+tail %.4gs vs snapshot+tail \
                   %.4gs vs full replay %.4gs; %d record(s) on disk)@."
                  (Engine.Recovery.choice_to_string est.Engine.Recovery.choice)
                  est.Engine.Recovery.chain_seconds
                  est.Engine.Recovery.snapshot_seconds
                  est.Engine.Recovery.replay_seconds total_records;
                let ctrl, covered =
                  match est.Engine.Recovery.choice with
                  | Engine.Recovery.Chain_tail -> (
                      match
                        Engine.Checkpoint.recover ~instance:inst ~path:chain
                      with
                      | Ok rc ->
                          if rc.Engine.Checkpoint.torn then
                            Format.printf
                              "checkpoint chain: dropped a torn tail \
                               increment@.";
                          Format.printf
                            "restored checkpoint chain: %d increment(s) \
                             covering seq %d@."
                            rc.Engine.Checkpoint.increments
                            rc.Engine.Checkpoint.covered;
                          ( rc.Engine.Checkpoint.ctrl,
                            rc.Engine.Checkpoint.covered )
                      | Error msg ->
                          failwith ("checkpoint chain recovery failed: " ^ msg)
                      )
                  | Engine.Recovery.Snapshot_tail ->
                      let snap =
                        match snapshot_in with
                        | Some s -> s
                        | None -> assert false
                      in
                      let ctrl =
                        restore_snapshot ~path:snap ~text:(read_all snap)
                      in
                      (ctrl, C.deltas_applied ctrl)
                  | Engine.Recovery.Full_replay -> (C.create ~policy inst, 0)
                in
                Engine.Recovery.note (C.counters ctrl)
                  est.Engine.Recovery.choice;
                if r.Engine.Wal_store.quarantined <> [] then begin
                  let n = List.length r.Engine.Wal_store.quarantined in
                  Engine.Counters.note_quarantined ~n (C.counters ctrl);
                  Format.printf
                    "segment store: quarantined %d record(s)%s@." n
                    (if r.Engine.Wal_store.torn_tail then
                       " (including a torn tail)"
                     else "")
                end;
                let tail =
                  List.filter
                    (fun (seq, _) -> seq > covered)
                    r.Engine.Wal_store.records
                in
                (ctrl, tail)
          in
          let store = Engine.Wal_store.open_dir dir in
          let w = Engine.Checkpoint.create_writer ~path:chain ctrl in
          if tail <> [] then begin
            let t0 = Obs.Clock.now () in
            C.apply_batch ~on_applied:(Engine.Checkpoint.note w) ctrl
              (List.map snd tail);
            Format.printf "replayed %d tail record(s) in %.4fs@."
              (List.length tail)
              (Obs.Clock.elapsed_since t0)
          end;
          (ctrl, Some (store, w))
    in
    let records =
      load_records
        ~plain_from_start:(wal_dir <> None)
        ~already:(C.deltas_applied ctrl) ~view:(C.view ctrl)
        ~note:(fun n -> Engine.Counters.note_quarantined ~n (C.counters ctrl))
        ()
    in
    let applied = ref 0 in
    let last_seq = ref (C.deltas_applied ctrl) in
    let t0 = Obs.Clock.now () in
    let boundary ~applied =
      let cut =
        match crash_after with
        | Some n -> max 1 (n - applied)
        | None -> max_int
      in
      let cut =
        match (snapshot_every, snapshot_out) with
        | Some every, Some _ -> min cut (every - (applied mod every))
        | _ -> cut
      in
      match store_ctx with
      | Some _ -> min cut (checkpoint_every - (applied mod checkpoint_every))
      | None -> cut
    in
    let process chunk =
      (match crash_after with
      | Some n when !applied >= n ->
          (* Simulated crash: no final replan, no snapshot, no
             cleanup — the recovery path has to cope. The WAL is
             flushed first so every applied delta survives the
             exit (see EXIT STATUS: 3); the checkpoint chain is
             deliberately NOT advanced, leaving a tail for recovery. *)
          (match wal_writer with
          | Some w -> Engine.Wal.flush_writer w
          | None -> ());
          (match store_ctx with
          | Some (store, _) -> Engine.Wal_store.flush store
          | None -> ());
          Format.printf "simulated crash at delta boundary %d (next seq %d)@."
            !applied
            (match chunk with (seq, _) :: _ -> seq | [] -> !last_seq + 1);
          Format.print_flush ();
          exit 3
      | _ -> ());
      let deltas = List.map snd chunk in
      (* Log first, apply second: a crash between the two re-applies
         on recovery instead of losing an applied record. One OS flush
         per batch; bytes on disk are identical to per-record appends. *)
      (match store_ctx with
      | Some (store, _) ->
          List.iter
            (fun d -> ignore (Engine.Wal_store.append_tee ~flush:false store d))
            deltas;
          Engine.Wal_store.flush store
      | None -> ());
      (match wal_writer with
      | Some w ->
          List.iter
            (fun d -> ignore (Engine.Wal.append_tee ~flush:false w d))
            deltas;
          Engine.Wal.flush_writer w
      | None -> ());
      (match store_ctx with
      | Some (_, w) ->
          C.apply_batch ~on_applied:(Engine.Checkpoint.note w) ctrl deltas
      | None -> C.apply_batch ctrl deltas);
      applied := !applied + List.length deltas;
      (match List.rev chunk with
      | (seq, _) :: _ -> last_seq := seq
      | [] -> ());
      (match store_ctx with
      | Some (store, w) when !applied mod checkpoint_every = 0 ->
          Engine.Checkpoint.checkpoint w ctrl;
          ignore
            (Engine.Wal_store.compact store
               ~covered:(Engine.Checkpoint.covered w))
      | _ -> ());
      match (snapshot_every, snapshot_out) with
      | Some every, Some path when !applied mod every = 0 ->
          Engine.Snapshot.write_file path ctrl
      | _ -> ()
    in
    (try iter_batches ~batch ~boundary records process
     with
    | Failure msg | Invalid_argument msg ->
        (* Partial output before dying: the operator can resume from
           the printed seq with a corrected log. *)
        Format.printf "aborted mid-log: %s@." msg;
        print_partial_state ctrl ~applied:!applied ~last_seq:!last_seq;
        Format.print_flush ();
        failwith
          (Printf.sprintf "replay aborted after %d deltas (log seq %d): %s"
             !applied !last_seq msg));
    (match wal_writer with Some w -> Engine.Wal.close w | None -> ());
    if not skip_final then C.replan ctrl;
    (match store_ctx with
    | Some (store, w) ->
        (* Final increment captures the post-replan plan, so a clean
           resume has a zero-record tail; compaction then retires
           every sealed segment. *)
        Engine.Checkpoint.checkpoint w ctrl;
        let deleted =
          Engine.Wal_store.compact store
            ~covered:(Engine.Checkpoint.covered w)
        in
        Format.printf
          "checkpoint chain: %d increment(s), covers seq %d; store: %d \
           segment(s) on disk%s@."
          (Engine.Checkpoint.increments w)
          (Engine.Checkpoint.covered w)
          (List.length (Engine.Wal_store.segments (Engine.Wal_store.dir store)))
          (if deleted > 0 then Printf.sprintf " (%d compacted away)" deleted
           else "");
        Engine.Checkpoint.close_writer w;
        Engine.Wal_store.close store
    | None -> ());
    let elapsed = Obs.Clock.elapsed_since t0 in
    let n = !applied in
    Format.printf "applied %d deltas in %.3fs wall (%.0f deltas/s)@." n
      elapsed
      (if elapsed > 0. then float n /. elapsed else 0.);
    finish_run ~ctrl ~compare_scratch ~plan_out ~snapshot_out ~stats
      ~metrics_out ~trace_out ~certify
  with
  | () -> Ok ()
  | exception (Failure msg | Invalid_argument msg | Sys_error msg) ->
      Error (`Msg msg)

let file =
  Arg.(
    required
    & pos 0 (some non_dir_file) None
    & info [] ~docv:"FILE" ~doc:"Instance file or engine snapshot.")

let deltas_in =
  Arg.(
    value
    & opt (some non_dir_file) None
    & info [ "d"; "deltas" ] ~docv:"LOG"
        ~doc:
          "Delta log to replay: plain text or WAL (detected by content). \
           WAL replays recover around corrupted records and skip records \
           a restored snapshot already covers.")

let gen_deltas =
  Arg.(
    value
    & opt (some int) None
    & info [ "gen-deltas" ] ~docv:"N"
        ~doc:
          "Generate a synthetic Zipf churn log of $(docv) deltas and replay \
           it (ignored when $(b,--deltas) is given).")

let seed =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Churn seed.")

let deltas_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "deltas-out" ] ~docv:"FILE"
        ~doc:"Write the generated churn log here (plain format).")

let epoch =
  Arg.(
    value & opt string "every:64"
    & info [ "epoch" ] ~docv:"POLICY"
        ~doc:"Replan policy: $(b,every:N), $(b,drift:X) or $(b,manual).")

let skip_final =
  Arg.(
    value & flag
    & info [ "skip-final-replan" ]
        ~doc:"Do not force a replan after the last delta.")

let compare_scratch =
  Arg.(
    value & flag
    & info [ "compare" ]
        ~doc:
          "Also solve the final state from scratch (eager greedy) and print \
           the utility gap and per-solve evaluation cost.")

let snapshot_in =
  Arg.(
    value
    & opt (some string) None
    & info [ "snapshot-in" ] ~docv:"FILE"
        ~doc:
          "With an instance FILE and a WAL $(b,--deltas): estimate the cost \
           of restoring $(docv) plus replaying the uncovered tail against a \
           full from-scratch replay, take the cheaper path, and record the \
           choice in the counters (exported as \
           $(b,engine_recovery_path_total)). A missing or damaged snapshot \
           degrades to the full replay.")

let snapshot_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "snapshot-out" ] ~docv:"FILE"
        ~doc:
          "Write the engine state for a later resume (atomic tmp+rename; \
           the previous generation is kept as $(docv).prev).")

let snapshot_every =
  Arg.(
    value
    & opt (some int) None
    & info [ "snapshot-every" ] ~docv:"N"
        ~doc:
          "With $(b,--snapshot-out): also checkpoint every $(docv) applied \
           deltas, so a crash loses at most $(docv) deltas of work beyond \
           the WAL.")

let plan_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "plan-out" ] ~docv:"FILE" ~doc:"Write the final plan.")

let domains =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Number of OCaml domains for the parallel planner stages \
           (default: $(b,VDMC_DOMAINS), else the machine's recommended \
           count minus one). $(b,1) forces the exact sequential path; \
           plans are bit-identical at every setting.")

let wal_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "wal-out" ] ~docv:"FILE"
        ~doc:
          "Append every applied delta to this CRC-framed write-ahead log \
           (flushed per batch; sequence numbers continue across resumes).")

let crash_after =
  Arg.(
    value
    & opt (some int) None
    & info [ "crash-after" ] ~docv:"N"
        ~doc:
          "Simulate a crash: exit(3) at the delta boundary after $(docv) \
           applied deltas — no final replan, no snapshot, no cleanup. For \
           exercising the recovery path.")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write tracing spans (replans, recoveries, WAL and snapshot \
           I/O, planner extends) to $(docv) as JSON lines, one span per \
           line, with parent ids that nest across pool tasks.")

let metrics_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the metric registry (counters, gauges, latency \
           histograms) to $(docv) in Prometheus text format at the end \
           of the run.")

let stats =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print a human-readable table of every metric — counts, mean, \
           p50/p90/p99/max for histograms — after the run.")

let shards =
  Arg.(
    value
    & opt (some int) None
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Run $(docv) independent engine shards behind a router (each a \
           full controller + counters stack; joins go to the least-loaded \
           shard, budgets are split across shards). $(b,--wal-out) then \
           names a directory of per-shard WALs. $(b,--shards 1) is \
           bit-identical to the unsharded engine.")

let shard_tags =
  Arg.(
    value
    & opt (some string) None
    & info [ "shard-tags" ] ~docv:"TAGS"
        ~doc:
          "Comma-separated rack tag per shard (default: alternate \
           $(b,rack0),$(b,rack1)); the placement interleave spreads \
           consecutive users across distinct racks.")

let split =
  Arg.(
    value & opt string "even"
    & info [ "split" ] ~docv:"KIND"
        ~doc:
          "Per-shard budget split: $(b,even) ($(i,B/N)) or $(b,demand) \
           (proportional to observed per-shard demand).")

let rebalance_every =
  Arg.(
    value
    & opt (some int) None
    & info [ "rebalance-every" ] ~docv:"N"
        ~doc:
          "With $(b,--shards): every $(docv) applied deltas, move at most \
           $(b,--rebalance-k) users from over- to under-populated shards \
           (as ordinary leave/join pairs).")

let rebalance_k =
  Arg.(
    value & opt int 8
    & info [ "rebalance-k" ] ~docv:"K"
        ~doc:"Per-epoch cap on rebalance moves (default 8).")

let replicas =
  Arg.(
    value
    & opt (some int) None
    & info [ "replicas" ] ~docv:"N"
        ~doc:
          "Run a replicated control plane: the primary controller WAL-ships \
           every applied record to $(docv) follower controllers, which stay \
           bit-identical at every acked sequence number. With $(b,--shards), \
           each shard gets its own replica group. Requires an instance FILE \
           (followers rebuild by shipping, not snapshots).")

let heartbeat_every =
  Arg.(
    value
    & opt (some int) None
    & info [ "heartbeat-every" ] ~docv:"TICKS"
        ~doc:
          "With $(b,--replicas): logical ticks (applied records + idle \
           ticks) between primary heartbeats (default 8). Followers drain \
           shipped frames at heartbeat boundaries; the failure-detection \
           timeout scales to at least 3$(b,x) this.")

let kill_primary_at =
  Arg.(
    value
    & opt (some int) None
    & info [ "kill-primary-at" ] ~docv:"N"
        ~doc:
          "With $(b,--replicas) (unsharded): kill the primary cold at delta \
           boundary $(docv). The heartbeat failure detector then promotes \
           the most-caught-up follower — which finishes replaying its \
           buffered tail — and the run continues on the new primary with \
           zero divergence.")

let hand_over_at =
  Arg.(
    value
    & opt (some int) None
    & info [ "hand-over-at" ] ~docv:"N"
        ~doc:
          "With $(b,--replicas) (unsharded): planned lease-based failover at \
           delta boundary $(docv) — the primary grants a lease to the \
           most-caught-up follower, drains its tail, and flips roles. Zero \
           deltas are lost and the run continues on the new primary with \
           zero divergence; the demoted primary stays in the group as a \
           follower.")

let replica_transport =
  Arg.(
    value & opt string "queue"
    & info [ "replica-transport" ] ~docv:"KIND"
        ~doc:
          "With $(b,--replicas): the frame transport between primary and \
           followers — $(b,queue) (in-process FIFO) or $(b,socket) (a real \
           loopback socket pair per follower, length-prefixed CRC-framed \
           wire format). Final state is bit-identical across both.")

let replica_listen =
  Arg.(
    value
    & opt (some string) None
    & info [ "replica-listen" ] ~docv:"ADDR"
        ~doc:
          "Run this process as one follower of a multi-process replica set: \
           listen on $(docv) ($(b,unix:PATH) or $(b,HOST:PORT)), apply \
           frames shipped by a primary, and exit when told to quit \
           (printing the final state digest) or when orphaned past \
           $(b,--replica-idle-timeout) (exit 4).")

let replica_connect =
  Arg.(
    value
    & opt (some string) None
    & info [ "replica-connect" ] ~docv:"ADDRS"
        ~doc:
          "Run this process as the primary of a multi-process replica set: \
           dial the comma-separated follower $(docv), then apply + WAL-ship \
           every record over the sockets. Exits 5 if any follower's final \
           digest diverges.")

let replica_supervise =
  Arg.(
    value
    & opt (some int) None
    & info [ "replica-supervise" ] ~docv:"N"
        ~doc:
          "Spawn a replica set of $(docv) follower processes plus one \
           primary process (re-executing this binary), supervise them, and \
           — if the primary dies by signal ($(b,--replica-kill-at)) — \
           recover its durable WAL and re-ship the tail so every survivor \
           converges. Exits 5 on any divergence or unclean follower exit.")

let replica_id =
  Arg.(
    value & opt int 0
    & info [ "replica-id" ] ~docv:"ID"
        ~doc:
          "With $(b,--replica-listen): this follower's id, echoed in its \
           report line.")

let replica_idle_timeout =
  Arg.(
    value & opt float 30.
    & info [ "replica-idle-timeout" ] ~docv:"SECONDS"
        ~doc:
          "With $(b,--replica-listen): exit 4 when no primary connects or \
           speaks for $(docv) seconds (default 30).")

let replica_kill_at =
  Arg.(
    value
    & opt (some int) None
    & info [ "replica-kill-at" ] ~docv:"N"
        ~doc:
          "With $(b,--replica-connect) (directly or via \
           $(b,--replica-supervise)): the primary process SIGKILLs itself \
           at delta boundary $(docv) — a real crash, not a simulation.")

let replica_kill_mid_frame =
  Arg.(
    value & flag
    & info [ "replica-kill-mid-frame" ]
        ~doc:
          "With $(b,--replica-kill-at): first append the next record to the \
           WAL and write exactly half of its encoded frame to every \
           follower, then die — leaving a torn frame on every wire that \
           recovery must re-ship.")

let batch =
  Arg.(
    value & opt int 1
    & info [ "batch" ] ~docv:"N"
        ~doc:
          "Apply deltas $(docv) at a time through the batched entry point \
           (Controller.apply_batch): one counter flush, one tracing span \
           and one WAL OS-flush per batch instead of per record. Batches \
           never cross a snapshot, checkpoint, crash, kill or rebalance \
           boundary, so plans and artifacts are bit-identical to \
           $(b,--batch 1) at every $(docv).")

let wal_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "wal-dir" ] ~docv:"DIR"
        ~doc:
          "Durable state as a segmented WAL plus a checkpoint chain \
           ($(docv)/chain.ckpt) of delta-encoded increments. Each \
           checkpoint retires the sealed segments it covers, bounding \
           recovery I/O; on startup the cost model picks the cheapest of \
           chain+tail, snapshot+tail and full replay, and the store's \
           uncovered tail is replayed before new input records. Mutually \
           exclusive with $(b,--wal-out); unsupported with $(b,--shards) \
           and $(b,--replicas).")

let checkpoint_every =
  Arg.(
    value & opt int 512
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:
          "With $(b,--wal-dir): write a checkpoint increment and compact \
           covered segments every $(docv) applied deltas (default 512).")

let certify =
  Arg.(
    value & flag
    & info [ "certify" ]
        ~doc:
          "After the final replan, emit an optimality certificate (dense LP \
           duals on small worlds, the tableau-free Lagrangian emitter at \
           scale), re-verify it with the independent checker, and print \
           $(b,bound)/$(b,achieved)/$(b,ratio) — the achieved utility is \
           provably within $(b,ratio) of OPT. With $(b,--shards), each \
           shard certifies its sub-world and the checker composes and \
           re-verifies one global bound against the true budgets. The \
           verified ratio is exported as the \
           $(b,engine_certified_opt_ratio) gauge.")

let cmd =
  let doc = "replay a churn delta log through the replanning engine" in
  let man =
    [ `S Manpage.s_exit_status;
      `P
        "$(b,0) on success; $(b,3) when $(b,--crash-after) fired its \
         simulated crash (the WAL is flushed first, so every applied delta \
         is recoverable); $(b,4) when a $(b,--replica-listen) follower was \
         orphaned past its idle timeout; $(b,5) when a multi-process \
         replica set diverged or a supervised process exited uncleanly; \
         Cmdliner's usual codes otherwise." ]
  in
  Cmd.v (Cmd.info "mmd_engine" ~doc ~man)
    Term.(
      term_result
        (const engine_run $ file $ deltas_in $ gen_deltas $ seed $ deltas_out
       $ epoch $ skip_final $ compare_scratch $ snapshot_in $ snapshot_out
       $ snapshot_every $ plan_out $ domains $ wal_out $ crash_after
       $ trace_out $ metrics_out $ stats $ shards $ shard_tags $ split
       $ rebalance_every $ rebalance_k $ replicas $ heartbeat_every
       $ kill_primary_at $ hand_over_at $ replica_transport $ replica_listen
       $ replica_connect $ replica_supervise $ replica_id
       $ replica_idle_timeout $ replica_kill_at $ replica_kill_mid_frame
       $ batch $ wal_dir $ checkpoint_every $ certify))

let () = exit (Cmd.eval cmd)
