(* mmd_engine: run the incremental replanning engine against a churn
   delta log.

   The positional FILE is either an instance file (the initial world)
   or an engine snapshot from a previous run (--snapshot-out); the two
   are distinguished by content.

   Examples:
     mmd_engine instance.mmd --deltas churn.log
     mmd_engine instance.mmd --gen-deltas 5000 --seed 7 --deltas-out churn.log
     mmd_engine instance.mmd --deltas churn.log --epoch drift:0.05 --compare
     mmd_engine snapshot.eng --deltas more-churn.log --snapshot-out snapshot.eng
*)

open Cmdliner
module C = Engine.Controller

let read_all path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let engine_run file deltas_in gen_deltas seed deltas_out epoch skip_final
    compare_scratch snapshot_out plan_out domains =
  match
    Prelude.Pool.set_num_domains domains;
    let policy =
      match C.policy_of_string epoch with
      | Ok p -> p
      | Error msg -> failwith msg
    in
    let text = read_all file in
    let ctrl =
      if Engine.Snapshot.is_snapshot text then begin
        let ctrl = Engine.Snapshot.load text in
        Format.printf "restored snapshot: %d slots active, utility %.6g@."
          (Engine.View.active_count (C.view ctrl))
          (C.utility ctrl);
        ctrl
      end
      else C.create ~policy (Mmd.Io.of_string text)
    in
    let deltas =
      match (deltas_in, gen_deltas) with
      | Some path, _ -> Engine.Delta.read_log path
      | None, Some n ->
          let rng = Prelude.Rng.create seed in
          let log =
            Engine.Churn.generate ~rng (C.view ctrl)
              { Engine.Churn.default with deltas = n }
          in
          (match deltas_out with
          | Some path ->
              Engine.Delta.write_log path log;
              Format.printf "wrote %d deltas to %s@." n path
          | None -> ());
          log
      | None, None -> []
    in
    let t0 = Sys.time () in
    C.apply_all ctrl deltas;
    if not skip_final then C.replan ctrl;
    let elapsed = Sys.time () -. t0 in
    let n = List.length deltas in
    Format.printf "applied %d deltas in %.3fs CPU (%.0f deltas/s)@." n elapsed
      (if elapsed > 0. then float n /. elapsed else 0.);
    Format.printf "plan: %d streams transmitted, utility %.6g@."
      (List.length (Engine.Planner.admitted (C.planner ctrl)))
      (C.utility ctrl);
    Format.printf "%a@." Engine.Counters.pp_report (C.report ctrl);
    if compare_scratch then begin
      let scratch_util, scratch_evals = C.scratch (C.view ctrl) in
      let gap =
        if scratch_util > 0. then
          100. *. (1. -. (C.utility ctrl /. scratch_util))
        else 0.
      in
      Format.printf
        "from-scratch eager solve: utility %.6g (engine gap %.2f%%), %d \
         evals for one solve@."
        scratch_util gap scratch_evals
    end;
    (match plan_out with
    | Some path ->
        Mmd.Io.write_assignment path (C.plan ctrl);
        Format.printf "plan -> %s@." path
    | None -> ());
    match snapshot_out with
    | Some path ->
        Engine.Snapshot.write_file path ctrl;
        Format.printf "snapshot -> %s@." path
    | None -> ()
  with
  | () -> Ok ()
  | exception (Failure msg | Invalid_argument msg | Sys_error msg) ->
      Error (`Msg msg)

let file =
  Arg.(
    required
    & pos 0 (some non_dir_file) None
    & info [] ~docv:"FILE" ~doc:"Instance file or engine snapshot.")

let deltas_in =
  Arg.(
    value
    & opt (some non_dir_file) None
    & info [ "d"; "deltas" ] ~docv:"LOG" ~doc:"Delta log to replay.")

let gen_deltas =
  Arg.(
    value
    & opt (some int) None
    & info [ "gen-deltas" ] ~docv:"N"
        ~doc:
          "Generate a synthetic Zipf churn log of $(docv) deltas and replay \
           it (ignored when $(b,--deltas) is given).")

let seed =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Churn seed.")

let deltas_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "deltas-out" ] ~docv:"FILE"
        ~doc:"Write the generated churn log here.")

let epoch =
  Arg.(
    value & opt string "every:64"
    & info [ "epoch" ] ~docv:"POLICY"
        ~doc:"Replan policy: $(b,every:N), $(b,drift:X) or $(b,manual).")

let skip_final =
  Arg.(
    value & flag
    & info [ "skip-final-replan" ]
        ~doc:"Do not force a replan after the last delta.")

let compare_scratch =
  Arg.(
    value & flag
    & info [ "compare" ]
        ~doc:
          "Also solve the final state from scratch (eager greedy) and print \
           the utility gap and per-solve evaluation cost.")

let snapshot_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "snapshot-out" ] ~docv:"FILE"
        ~doc:"Write the engine state for a later resume.")

let plan_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "plan-out" ] ~docv:"FILE" ~doc:"Write the final plan.")

let domains =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Number of OCaml domains for the parallel planner stages \
           (default: $(b,VDMC_DOMAINS), else the machine's recommended \
           count minus one). $(b,1) forces the exact sequential path; \
           plans are bit-identical at every setting.")

let cmd =
  let doc = "replay a churn delta log through the replanning engine" in
  Cmd.v (Cmd.info "mmd_engine" ~doc)
    Term.(
      term_result
        (const engine_run $ file $ deltas_in $ gen_deltas $ seed $ deltas_out
       $ epoch $ skip_final $ compare_scratch $ snapshot_out $ plan_out
       $ domains))

let () = exit (Cmd.eval cmd)
